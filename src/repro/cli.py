"""Command-line interface: ``fmossim``.

Subcommands::

    fmossim simulate NETLIST --set a=1 --set clk=0 [--show out ...]
        Logic-simulate a netlist for a sequence of input settings.

    fmossim faultsim NETLIST --observe OUT [--faults stuck|all] [--limit N]
                             [--backend serial|concurrent|batch|sharded]
                             [--no-drop] [--detect-policy hard|any]
                             [--clock process|perf] [--lane-width W]
                             [--jobs N|auto] [--inner-backend NAME]
                             [--locality dynamic|static|compiled]
                             [--no-solve-cache] [--no-collapse]
                             [--no-trim] [--no-static-prune]
                             [--no-lint] [--profile N]
        Fault simulation (strategy selected from the backend registry)
        with randomly ordered input settings or a pattern file (one
        "name=value name=value ..." line per setting, blank line
        between patterns, '#' lines ignored).  --profile N wraps the
        run in cProfile and prints the top N cumulative entries to
        stderr.

    fmossim lint NETLIST [--json]
        Run the netlist lints (exit 1 if any error-severity finding).
        --json prints the findings as structured JSON instead of text.
        ``validate`` is kept as an alias.

    fmossim experiment {fig1,fig2,fig3,scaling} [--rows R --cols C ...]
        Reproduce one of the paper's experiments and print the figure.

    fmossim serve [--host H] [--port P] [--workers N|auto]
                  [--cache-size N]
        Run the fault-simulation service: an asyncio TCP job server
        over persistent warm-state workers (see repro.service).
        Stops gracefully on SIGTERM/SIGINT.

    fmossim submit NETLIST --observe OUT [faultsim options]
                           [--host H] [--port P] [--no-stream]
        Submit a fault-simulation job to a running service and stream
        its per-pattern results as they land.  Takes the same fault /
        pattern / policy / backend options as faultsim.

Netlists use the text format of :mod:`repro.netlist.sim_format`.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core.backends import SimPolicy, available_backends, run_backend
from .core.faults import (
    node_stuck_universe,
    sample_faults,
    transistor_stuck_universe,
)
from .errors import ReproError
from .harness import experiments
from .netlist import sim_format, validate
from .patterns.clocking import Phase, TestPattern
from .switchlevel.kernel import LOCALITIES
from .switchlevel.simulator import Simulator


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fmossim",
        description=(
            "Concurrent switch-level fault simulator "
            "(FMOSSIM reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"fmossim {__version__}"
    )
    commands = parser.add_subparsers(required=True)

    simulate = commands.add_parser(
        "simulate", help="logic-simulate a netlist"
    )
    simulate.add_argument("netlist")
    simulate.add_argument(
        "--set",
        dest="settings",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="input setting; repeat for a sequence (applied in order)",
    )
    simulate.add_argument(
        "--show",
        action="append",
        default=[],
        metavar="NODE",
        help="nodes to print after each setting (default: all)",
    )
    simulate.add_argument(
        "--locality",
        choices=LOCALITIES,
        default="dynamic",
        help="settle locality: dynamic vicinities (the paper's "
        "algorithm), static DC-connected components, or compiled "
        "channel-connected components with the solve cache "
        "(default: dynamic)",
    )
    _add_lint_option(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    faultsim = commands.add_parser(
        "faultsim", help="concurrent fault simulation of a netlist"
    )
    faultsim.add_argument("netlist")
    faultsim.add_argument(
        "--observe", action="append", required=True, metavar="NODE"
    )
    faultsim.add_argument(
        "--patterns",
        help="pattern file: one 'a=1 b=0' line per input setting, "
        "blank lines separate patterns",
    )
    faultsim.add_argument(
        "--faults",
        choices=["stuck", "transistor", "all"],
        default="stuck",
        help="fault universe (default: node stuck-at faults)",
    )
    faultsim.add_argument(
        "--limit", type=int, default=None,
        help="randomly sample at most this many faults",
    )
    faultsim.add_argument("--seed", type=int, default=0)
    faultsim.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy (default: concurrent)",
    )
    faultsim.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="profile the run with cProfile and print the top N "
        "cumulative entries to stderr",
    )
    _add_policy_arguments(faultsim)
    add_backend_option_arguments(faultsim)
    _add_lint_option(faultsim)
    faultsim.set_defaults(handler=cmd_faultsim)

    serve = commands.add_parser(
        "serve",
        help="run the fault-simulation service (asyncio job server "
        "over persistent warm-state workers)",
    )
    serve.add_argument(
        "--host", default=None,
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 7455; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=_jobs_argument, default=None, metavar="N|auto",
        help="persistent worker processes; 'auto' asks the OS for the "
        "CPUs actually available (default: cpu count)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="circuits each worker keeps warm (default: 4)",
    )
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit",
        help="submit a fault-simulation job to a running service "
        "and stream its results",
    )
    submit.add_argument("netlist")
    submit.add_argument(
        "--observe", action="append", required=True, metavar="NODE"
    )
    submit.add_argument(
        "--patterns",
        help="pattern file: one 'a=1 b=0' line per input setting, "
        "blank lines separate patterns",
    )
    submit.add_argument(
        "--faults",
        choices=["stuck", "transistor", "all"],
        default="stuck",
        help="fault universe (default: node stuck-at faults)",
    )
    submit.add_argument(
        "--limit", type=int, default=None,
        help="randomly sample at most this many faults",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy (default: concurrent)",
    )
    submit.add_argument(
        "--host", default=None,
        help="service host (default: 127.0.0.1)",
    )
    submit.add_argument(
        "--port", type=int, default=None,
        help="service port (default: 7455)",
    )
    submit.add_argument(
        "--no-stream",
        action="store_true",
        help="suppress the per-pattern result stream; print only the "
        "final summary",
    )
    _add_policy_arguments(submit)
    add_backend_option_arguments(submit)
    submit.set_defaults(handler=cmd_submit)

    lint_help = {
        "lint": "run netlist lints (exit 1 on errors)",
        "validate": "run netlist lints (alias of lint)",
    }
    for name, help_text in lint_help.items():
        lint_cmd = commands.add_parser(name, help=help_text)
        lint_cmd.add_argument("netlist")
        lint_cmd.add_argument(
            "--json",
            action="store_true",
            dest="as_json",
            help="print findings as structured JSON",
        )
        lint_cmd.set_defaults(handler=cmd_lint)

    experiment = commands.add_parser(
        "experiment", help="reproduce a paper experiment"
    )
    experiment.add_argument(
        "which", choices=["fig1", "fig2", "fig3", "scaling"]
    )
    experiment.add_argument("--rows", type=int, default=4)
    experiment.add_argument("--cols", type=int, default=4)
    experiment.add_argument("--faults", type=int, default=None)
    experiment.add_argument(
        "--seed", type=int, default=experiments.DEFAULT_SEED
    )
    experiment.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy (default: concurrent)",
    )
    add_backend_option_arguments(experiment)
    experiment.set_defaults(handler=cmd_experiment)
    return parser


def _add_policy_arguments(subparser) -> None:
    """SimPolicy knobs: every registry strategy honors these."""
    subparser.add_argument(
        "--no-drop",
        action="store_true",
        help="keep simulating detected faults to the end of the "
        "sequence (disable the paper's fault dropping)",
    )
    subparser.add_argument(
        "--detect-policy",
        choices=["hard", "any"],
        default="hard",
        help="detection rule: 'hard' needs definite differing values, "
        "'any' counts X-vs-definite differences too (default: hard)",
    )
    subparser.add_argument(
        "--clock",
        choices=["process", "perf"],
        default="process",
        help="timing source: 'process' CPU seconds (as the paper "
        "measured) or 'perf' wall clock (default: process)",
    )


def add_backend_option_arguments(subparser) -> None:
    """Backend-constructor options, forwarded through the registry."""
    subparser.add_argument(
        "--lane-width",
        type=int,
        default=None,
        metavar="W",
        help="batch backend: circuits simulated per bit-parallel pass",
    )
    subparser.add_argument(
        "--jobs",
        type=_jobs_argument,
        default=None,
        metavar="N|auto",
        help="sharded backend: worker processes; 'auto' asks the OS "
        "for the CPUs actually available to this process",
    )
    subparser.add_argument(
        "--inner-backend",
        choices=[n for n in available_backends() if n != "sharded"],
        default=None,
        help="sharded backend: strategy run inside each shard",
    )
    subparser.add_argument(
        "--locality",
        choices=LOCALITIES,
        default=None,
        help="settle locality (serial/concurrent/batch, forwarded to "
        "sharded inner backends): dynamic vicinities, static "
        "DC-connected components, or compiled channel-connected "
        "components with the solve cache (default: dynamic)",
    )
    subparser.add_argument(
        "--no-solve-cache",
        action="store_true",
        help="compiled locality: disable the memoized per-component "
        "solve cache (measure the compile-only effect)",
    )
    subparser.add_argument(
        "--no-collapse",
        action="store_true",
        help="simulate every fault individually instead of one "
        "representative per structural equivalence class",
    )
    subparser.add_argument(
        "--no-trim",
        action="store_true",
        help="serial/concurrent: disable checkpoint/warm-start and "
        "clean-component redundancy trimming (ablation baseline)",
    )
    subparser.add_argument(
        "--no-static-prune",
        action="store_true",
        help="simulate faults the static testability analysis proved "
        "unexcitable or unobservable instead of pruning them up front",
    )


def _jobs_argument(text: str):
    """``--jobs``/``--workers`` value: an integer or the word 'auto'
    (resolved against the CPUs available via
    :func:`repro.core.shard.resolve_jobs`)."""
    if text == "auto":
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None


def _add_lint_option(subparser) -> None:
    subparser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the automatic netlist lints (warnings to stderr, "
        "errors fatal)",
    )


def backend_options_from_args(args) -> dict:
    """Collect explicitly given backend options; the registry rejects
    combinations the selected backend does not accept."""
    options = {}
    if args.lane_width is not None:
        options["lane_width"] = args.lane_width
    if args.jobs is not None:
        options["jobs"] = args.jobs
    if args.inner_backend is not None:
        options["inner_backend"] = args.inner_backend
    if args.locality is not None:
        options["locality"] = args.locality
    if args.no_solve_cache:
        options["solve_cache"] = False
    if args.no_collapse:
        options["collapse"] = False
    if args.no_trim:
        options["trim"] = False
    if args.no_static_prune:
        options["static_prune"] = False
    return options


def _lint_netlist(net, skip: bool) -> None:
    """The faultsim/simulate pre-flight: warn on stderr, die on errors."""
    if skip:
        return
    findings = validate.validate(net)
    for lint in findings:
        if lint.severity == validate.WARNING:
            print(f"lint: {lint}", file=sys.stderr)
    errors = [lint for lint in findings if lint.severity == validate.ERROR]
    if errors:
        raise ReproError(
            "netlist failed lint (use --no-lint to run anyway):\n"
            + "\n".join(f"  {lint}" for lint in errors)
        )


def _parse_assignment(text: str) -> tuple[str, int]:
    name, _, value = text.partition("=")
    if not name or value not in ("0", "1", "x", "X"):
        raise ReproError(
            f"bad assignment {text!r}; expected NAME=0|1|X"
        )
    return name, {"0": 0, "1": 1, "x": 2, "X": 2}[value]


def cmd_simulate(args) -> int:
    net = sim_format.load_path(args.netlist)
    _lint_netlist(net, args.no_lint)
    sim = Simulator(net, locality=args.locality)
    show = args.show or sorted(
        name for name in net.node_index if name not in ("vdd", "gnd")
    )
    if not args.settings:
        print("no --set given; initial (settled) state:")
    for text in args.settings:
        name, value = _parse_assignment(text)
        sim.apply({name: value})
        values = " ".join(f"{node}={sim.get(node)}" for node in show)
        print(f"after {text}: {values}")
    if not args.settings:
        values = " ".join(f"{node}={sim.get(node)}" for node in show)
        print(values)
    return 0


def _load_patterns(path: str) -> list[TestPattern]:
    patterns: list[TestPattern] = []
    phases: list[Phase] = []
    with open(path, "r", encoding="utf-8") as stream:
        for raw in stream:
            line = raw.strip()
            if line.startswith("#"):
                continue
            if not line:
                if phases:
                    patterns.append(
                        TestPattern(f"p{len(patterns)}", tuple(phases))
                    )
                    phases = []
                continue
            setting = dict(
                _parse_assignment(token) for token in line.split()
            )
            phases.append(Phase(setting))
    if phases:
        patterns.append(TestPattern(f"p{len(patterns)}", tuple(phases)))
    if not patterns:
        raise ReproError(
            f"pattern file {path!r} defines no patterns "
            "(only blank/comment lines)"
        )
    return patterns


def _build_workload(args, net):
    """The shared faultsim/submit workload: faults, patterns, policy."""
    if args.faults == "stuck":
        faults = node_stuck_universe(net)
    elif args.faults == "transistor":
        faults = transistor_stuck_universe(net)
    else:
        faults = node_stuck_universe(net) + transistor_stuck_universe(net)
    if args.limit is not None and args.limit < len(faults):
        faults = sample_faults(faults, args.limit, seed=args.seed)
    if args.patterns:
        patterns = _load_patterns(args.patterns)
    else:
        from .patterns.random_patterns import random_patterns

        patterns = random_patterns(net, 20, seed=args.seed)
    policy = SimPolicy(
        detection_policy=args.detect_policy,
        drop_on_detect=not args.no_drop,
        clock=args.clock,
    )
    return faults, patterns, policy


def _print_report(report, faults, clock: str) -> None:
    clock_label = "CPU" if clock == "process" else "wall"
    print(
        f"{report.detected}/{report.n_faults} faults detected "
        f"({report.coverage:.1%}) over {report.n_patterns} patterns "
        f"in {report.total_seconds:.2f}s {clock_label} "
        f"({report.backend} backend)"
    )
    if report.collapse is not None:
        stats = report.collapse
        print(
            f"  collapsed {stats['faults']}→{stats['representatives']} "
            f"simulated circuits ({stats['classes']} equivalence classes)"
        )
    if report.static_pruned is not None:
        stats = report.static_pruned
        print(
            f"  statically pruned {stats['pruned']}/{stats['faults']} "
            f"faults ({stats['unexcitable']} unexcitable, "
            f"{stats['unobservable']} unobservable)"
        )
    if report.trim is not None:
        counters = ", ".join(
            f"{value} {key.replace('_', ' ')}"
            for key, value in sorted(report.trim.items())
        )
        if counters:
            print(f"  trimmed: {counters}")
    if report.shard_stats is not None:
        stats = report.shard_stats
        trace = (
            "good trace shipped" if stats["trace_shipped"]
            else "per-shard good circuit"
        )
        print(
            f"  shards: {stats['jobs']} job(s), {stats['blocks']} "
            f"block(s), imbalance {stats['imbalance_ratio']:.2f}, "
            f"{trace}"
        )
    if report.solve_cache is not None:
        cache = report.solve_cache
        print(
            f"  solve cache: {cache['hits']} hits / "
            f"{cache['misses']} misses ({cache['hit_rate']:.1%})"
        )
    for detection in report.log.detections:
        print(f"  {detection}")
    undetected = (
        set(range(1, len(faults) + 1)) - report.log.detected_circuits()
    )
    for cid in sorted(undetected):
        print(f"  undetected: {faults[cid - 1].describe()}")


def cmd_faultsim(args) -> int:
    net = sim_format.load_path(args.netlist)
    _lint_netlist(net, args.no_lint)
    faults, patterns, policy = _build_workload(args, net)
    run = lambda: run_backend(  # noqa: E731 - one invocation, two modes
        args.backend, net, faults, args.observe, patterns, policy,
        **backend_options_from_args(args),
    )
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        report = profiler.runcall(run)
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative"
        ).print_stats(args.profile)
    else:
        report = run()
    _print_report(report, faults, args.clock)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .service.server import FaultSimServer

    kwargs = {}
    if args.host is not None:
        kwargs["host"] = args.host
    if args.workers is not None:
        from .core.shard import resolve_jobs

        kwargs["workers"] = resolve_jobs(args.workers)
    if args.cache_size is not None:
        kwargs["cache_size"] = args.cache_size
    if args.port is not None:
        kwargs["port"] = args.port
    else:
        from .service.protocol import DEFAULT_PORT

        kwargs["port"] = DEFAULT_PORT
    server = FaultSimServer(**kwargs)

    def ready(srv) -> None:
        host, port = srv.address
        print(
            f"fault-sim service listening on {host}:{port} "
            f"({srv.pool.workers} worker(s), "
            f"cache {srv.pool.cache_size} circuit(s)/worker)",
            flush=True,
        )

    asyncio.run(server.serve(ready=ready))
    print("fault-sim service stopped", flush=True)
    return 0


def cmd_submit(args) -> int:
    from .service.client import ServiceClient
    from .service.protocol import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        CancelledFrame,
        DoneFrame,
        JobSpec,
        PatternFrame,
        StartedFrame,
    )

    # The raw file text travels on the wire: the service's circuit
    # fingerprint is the content hash, so resubmitting the same file
    # must hash identically (no parse/dump round trip).
    with open(args.netlist, "r", encoding="utf-8") as stream:
        netlist_text = stream.read()
    net = sim_format.loads(netlist_text)
    faults, patterns, policy = _build_workload(args, net)
    job = JobSpec(
        netlist=netlist_text,
        observed=tuple(args.observe),
        faults=tuple(faults),
        patterns=tuple(patterns),
        policy=policy,
        backend=args.backend,
        options=backend_options_from_args(args),
    )
    client = ServiceClient(
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
    )
    stream_frames = not args.no_stream
    handle = client.submit(job, stream=stream_frames)
    print(f"submitted {handle.job_id}", flush=True)
    result = None
    for frame in handle:
        if isinstance(frame, StartedFrame):
            cache_state = "warm" if frame.warm else "cold"
            print(
                f"started on worker {frame.worker} "
                f"({cache_state} circuit cache)",
                flush=True,
            )
        elif isinstance(frame, PatternFrame) and stream_frames:
            record = frame.record
            print(
                f"  pattern {record.index} [{record.label}]: "
                f"{record.detections} detected, "
                f"{record.live_after} live, {record.seconds:.3f}s",
                flush=True,
            )
        elif isinstance(frame, CancelledFrame):
            print(
                f"cancelled after {frame.patterns_completed} pattern(s)",
                file=sys.stderr,
            )
            return 1
        elif isinstance(frame, DoneFrame):
            result = frame
    if result is None:
        print("job ended without a result", file=sys.stderr)
        return 1
    _print_report(result.report, faults, policy.clock)
    timings = result.timings
    print(
        "  service: queue {q:.3f}s | compile {c:.3f}s | "
        "simulate {s:.3f}s | total {t:.3f}s".format(
            q=timings.get("queue_seconds", 0.0),
            c=timings.get("compile_seconds", 0.0),
            s=timings.get("simulate_seconds", 0.0),
            t=timings.get("total_seconds", 0.0),
        )
    )
    return 0


def cmd_lint(args) -> int:
    import json

    net = sim_format.load_path(args.netlist)
    findings = validate.validate(net)
    errors = [lint for lint in findings if lint.severity == validate.ERROR]
    if args.as_json:
        print(
            json.dumps(
                {
                    "netlist": args.netlist,
                    "errors": len(errors),
                    "warnings": len(findings) - len(errors),
                    "findings": [lint.to_json() for lint in findings],
                },
                indent=2,
            )
        )
    else:
        for lint in findings:
            print(lint)
        if not findings:
            print("clean: no findings")
    return 1 if errors else 0


def cmd_experiment(args) -> int:
    backend_options = backend_options_from_args(args)
    if args.which == "fig1":
        result = experiments.run_fig1(
            args.rows, args.cols, n_faults=args.faults, seed=args.seed,
            backend=args.backend, backend_options=backend_options,
        )
    elif args.which == "fig2":
        result = experiments.run_fig2(
            args.rows, args.cols, n_faults=args.faults, seed=args.seed,
            backend=args.backend, backend_options=backend_options,
        )
    elif args.which == "fig3":
        result = experiments.run_fig3(
            args.rows, args.cols, seed=args.seed, backend=args.backend,
            backend_options=backend_options,
        )
    else:
        result = experiments.run_scaling(
            small=(args.rows // 2 or 2, args.cols),
            large=(args.rows, args.cols),
            n_faults=args.faults,
            seed=args.seed,
            backend=args.backend,
            backend_options=backend_options,
        )
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
