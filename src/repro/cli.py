"""Command-line interface: ``fmossim``.

Subcommands::

    fmossim simulate NETLIST --set a=1 --set clk=0 [--show out ...]
        Logic-simulate a netlist for a sequence of input settings.

    fmossim faultsim NETLIST --observe OUT [--faults stuck|all] [--limit N]
                             [--backend serial|concurrent|batch|sharded]
                             [--no-drop] [--detect-policy hard|any]
                             [--clock process|perf] [--lane-width W]
                             [--jobs N] [--inner-backend NAME]
                             [--locality dynamic|static|compiled]
                             [--no-solve-cache] [--profile N]
        Fault simulation (strategy selected from the backend registry)
        with randomly ordered input settings or a pattern file (one
        "name=value name=value ..." line per setting, blank line
        between patterns, '#' lines ignored).  --profile N wraps the
        run in cProfile and prints the top N cumulative entries to
        stderr.

    fmossim validate NETLIST
        Run the netlist lints.

    fmossim experiment {fig1,fig2,fig3,scaling} [--rows R --cols C ...]
        Reproduce one of the paper's experiments and print the figure.

Netlists use the text format of :mod:`repro.netlist.sim_format`.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core.backends import SimPolicy, available_backends, run_backend
from .switchlevel.kernel import LOCALITIES
from .core.faults import (
    node_stuck_universe,
    sample_faults,
    transistor_stuck_universe,
)
from .errors import ReproError
from .harness import experiments
from .netlist import sim_format, validate
from .patterns.clocking import Phase, TestPattern
from .switchlevel.simulator import Simulator


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fmossim",
        description=(
            "Concurrent switch-level fault simulator "
            "(FMOSSIM reproduction)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"fmossim {__version__}"
    )
    commands = parser.add_subparsers(required=True)

    simulate = commands.add_parser(
        "simulate", help="logic-simulate a netlist"
    )
    simulate.add_argument("netlist")
    simulate.add_argument(
        "--set",
        dest="settings",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="input setting; repeat for a sequence (applied in order)",
    )
    simulate.add_argument(
        "--show",
        action="append",
        default=[],
        metavar="NODE",
        help="nodes to print after each setting (default: all)",
    )
    simulate.add_argument(
        "--locality",
        choices=LOCALITIES,
        default="dynamic",
        help="settle locality: dynamic vicinities (the paper's "
        "algorithm), static DC-connected components, or compiled "
        "channel-connected components with the solve cache "
        "(default: dynamic)",
    )
    simulate.set_defaults(handler=cmd_simulate)

    faultsim = commands.add_parser(
        "faultsim", help="concurrent fault simulation of a netlist"
    )
    faultsim.add_argument("netlist")
    faultsim.add_argument(
        "--observe", action="append", required=True, metavar="NODE"
    )
    faultsim.add_argument(
        "--patterns",
        help="pattern file: one 'a=1 b=0' line per input setting, "
        "blank lines separate patterns",
    )
    faultsim.add_argument(
        "--faults",
        choices=["stuck", "transistor", "all"],
        default="stuck",
        help="fault universe (default: node stuck-at faults)",
    )
    faultsim.add_argument(
        "--limit", type=int, default=None,
        help="randomly sample at most this many faults",
    )
    faultsim.add_argument("--seed", type=int, default=0)
    faultsim.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy (default: concurrent)",
    )
    faultsim.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="profile the run with cProfile and print the top N "
        "cumulative entries to stderr",
    )
    _add_policy_arguments(faultsim)
    add_backend_option_arguments(faultsim)
    faultsim.set_defaults(handler=cmd_faultsim)

    validate_cmd = commands.add_parser(
        "validate", help="run netlist lints"
    )
    validate_cmd.add_argument("netlist")
    validate_cmd.set_defaults(handler=cmd_validate)

    experiment = commands.add_parser(
        "experiment", help="reproduce a paper experiment"
    )
    experiment.add_argument(
        "which", choices=["fig1", "fig2", "fig3", "scaling"]
    )
    experiment.add_argument("--rows", type=int, default=4)
    experiment.add_argument("--cols", type=int, default=4)
    experiment.add_argument("--faults", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=experiments.DEFAULT_SEED)
    experiment.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy (default: concurrent)",
    )
    add_backend_option_arguments(experiment)
    experiment.set_defaults(handler=cmd_experiment)
    return parser


def _add_policy_arguments(subparser) -> None:
    """SimPolicy knobs: every registry strategy honors these."""
    subparser.add_argument(
        "--no-drop",
        action="store_true",
        help="keep simulating detected faults to the end of the "
        "sequence (disable the paper's fault dropping)",
    )
    subparser.add_argument(
        "--detect-policy",
        choices=["hard", "any"],
        default="hard",
        help="detection rule: 'hard' needs definite differing values, "
        "'any' counts X-vs-definite differences too (default: hard)",
    )
    subparser.add_argument(
        "--clock",
        choices=["process", "perf"],
        default="process",
        help="timing source: 'process' CPU seconds (as the paper "
        "measured) or 'perf' wall clock (default: process)",
    )


def add_backend_option_arguments(subparser) -> None:
    """Backend-constructor options, forwarded through the registry."""
    subparser.add_argument(
        "--lane-width",
        type=int,
        default=None,
        metavar="W",
        help="batch backend: circuits simulated per bit-parallel pass",
    )
    subparser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="sharded backend: worker processes (fault shards)",
    )
    subparser.add_argument(
        "--inner-backend",
        choices=[n for n in available_backends() if n != "sharded"],
        default=None,
        help="sharded backend: strategy run inside each shard",
    )
    subparser.add_argument(
        "--locality",
        choices=LOCALITIES,
        default=None,
        help="settle locality (serial/concurrent/batch, forwarded to "
        "sharded inner backends): dynamic vicinities, static "
        "DC-connected components, or compiled channel-connected "
        "components with the solve cache (default: dynamic)",
    )
    subparser.add_argument(
        "--no-solve-cache",
        action="store_true",
        help="compiled locality: disable the memoized per-component "
        "solve cache (measure the compile-only effect)",
    )


def backend_options_from_args(args) -> dict:
    """Collect explicitly given backend options; the registry rejects
    combinations the selected backend does not accept."""
    options = {}
    if args.lane_width is not None:
        options["lane_width"] = args.lane_width
    if args.jobs is not None:
        options["jobs"] = args.jobs
    if args.inner_backend is not None:
        options["inner_backend"] = args.inner_backend
    if args.locality is not None:
        options["locality"] = args.locality
    if args.no_solve_cache:
        options["solve_cache"] = False
    return options


def _parse_assignment(text: str) -> tuple[str, int]:
    name, _, value = text.partition("=")
    if not name or value not in ("0", "1", "x", "X"):
        raise ReproError(
            f"bad assignment {text!r}; expected NAME=0|1|X"
        )
    return name, {"0": 0, "1": 1, "x": 2, "X": 2}[value]


def cmd_simulate(args) -> int:
    net = sim_format.load_path(args.netlist)
    sim = Simulator(net, locality=args.locality)
    show = args.show or sorted(
        name for name in net.node_index if name not in ("vdd", "gnd")
    )
    if not args.settings:
        print("no --set given; initial (settled) state:")
    for text in args.settings:
        name, value = _parse_assignment(text)
        sim.apply({name: value})
        values = " ".join(f"{node}={sim.get(node)}" for node in show)
        print(f"after {text}: {values}")
    if not args.settings:
        values = " ".join(f"{node}={sim.get(node)}" for node in show)
        print(values)
    return 0


def _load_patterns(path: str) -> list[TestPattern]:
    patterns: list[TestPattern] = []
    phases: list[Phase] = []
    with open(path, "r", encoding="utf-8") as stream:
        for raw in stream:
            line = raw.strip()
            if line.startswith("#"):
                continue
            if not line:
                if phases:
                    patterns.append(
                        TestPattern(f"p{len(patterns)}", tuple(phases))
                    )
                    phases = []
                continue
            setting = dict(
                _parse_assignment(token) for token in line.split()
            )
            phases.append(Phase(setting))
    if phases:
        patterns.append(TestPattern(f"p{len(patterns)}", tuple(phases)))
    if not patterns:
        raise ReproError(
            f"pattern file {path!r} defines no patterns "
            "(only blank/comment lines)"
        )
    return patterns


def cmd_faultsim(args) -> int:
    net = sim_format.load_path(args.netlist)
    if args.faults == "stuck":
        faults = node_stuck_universe(net)
    elif args.faults == "transistor":
        faults = transistor_stuck_universe(net)
    else:
        faults = node_stuck_universe(net) + transistor_stuck_universe(net)
    if args.limit is not None and args.limit < len(faults):
        faults = sample_faults(faults, args.limit, seed=args.seed)
    if args.patterns:
        patterns = _load_patterns(args.patterns)
    else:
        from .patterns.random_patterns import random_patterns

        patterns = random_patterns(net, 20, seed=args.seed)
    policy = SimPolicy(
        detection_policy=args.detect_policy,
        drop_on_detect=not args.no_drop,
        clock=args.clock,
    )
    run = lambda: run_backend(  # noqa: E731 - one invocation, two modes
        args.backend, net, faults, args.observe, patterns, policy,
        **backend_options_from_args(args),
    )
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        report = profiler.runcall(run)
        pstats.Stats(profiler, stream=sys.stderr).sort_stats(
            "cumulative"
        ).print_stats(args.profile)
    else:
        report = run()
    clock_label = "CPU" if args.clock == "process" else "wall"
    print(
        f"{report.detected}/{report.n_faults} faults detected "
        f"({report.coverage:.1%}) over {report.n_patterns} patterns "
        f"in {report.total_seconds:.2f}s {clock_label} "
        f"({report.backend} backend)"
    )
    if report.solve_cache is not None:
        cache = report.solve_cache
        print(
            f"  solve cache: {cache['hits']} hits / "
            f"{cache['misses']} misses ({cache['hit_rate']:.1%})"
        )
    for detection in report.log.detections:
        print(f"  {detection}")
    undetected = set(range(1, len(faults) + 1)) - report.log.detected_circuits()
    for cid in sorted(undetected):
        print(f"  undetected: {faults[cid - 1].describe()}")
    return 0


def cmd_validate(args) -> int:
    net = sim_format.load_path(args.netlist)
    findings = validate.validate(net)
    for lint in findings:
        print(lint)
    errors = [lint for lint in findings if lint.severity == validate.ERROR]
    if not findings:
        print("clean: no findings")
    return 1 if errors else 0


def cmd_experiment(args) -> int:
    backend_options = backend_options_from_args(args)
    if args.which == "fig1":
        result = experiments.run_fig1(
            args.rows, args.cols, n_faults=args.faults, seed=args.seed,
            backend=args.backend, backend_options=backend_options,
        )
    elif args.which == "fig2":
        result = experiments.run_fig2(
            args.rows, args.cols, n_faults=args.faults, seed=args.seed,
            backend=args.backend, backend_options=backend_options,
        )
    elif args.which == "fig3":
        result = experiments.run_fig3(
            args.rows, args.cols, seed=args.seed, backend=args.backend,
            backend_options=backend_options,
        )
    else:
        result = experiments.run_scaling(
            small=(args.rows // 2 or 2, args.cols),
            large=(args.rows, args.cols),
            n_faults=args.faults,
            seed=args.seed,
            backend=args.backend,
            backend_options=backend_options,
        )
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
