"""Shift registers and a register file, built from the cell library.

The paper's conclusion motivates fault simulation "even when developing
a test for a small section of an integrated circuit (such as an ALU or a
register array)"; these generators provide exactly those DUTs for the
examples and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import decode, memory, nmos
from ..errors import NetworkError
from ..netlist.builder import NetworkBuilder, declare_bus
from ..switchlevel.network import Network


@dataclass(frozen=True)
class ShiftRegister:
    """A two-phase dynamic shift register."""

    net: Network
    stages: int
    data_in: str
    clock_a: str
    clock_b: str
    taps: list[str] = field(default_factory=list)

    @property
    def data_out(self) -> str:
        return self.taps[-1]


def build_shift_register(stages: int) -> ShiftRegister:
    """An n-stage two-phase dynamic shift register (non-inverting)."""
    if stages < 1:
        raise NetworkError("a shift register needs at least one stage")
    b = NetworkBuilder()
    data_in = b.input("din")
    clock_a = b.input("phi_a")
    clock_b = b.input("phi_b")
    taps: list[str] = []
    previous = data_in
    for index in range(stages):
        previous = memory.shift_stage(
            b, previous, clock_a, clock_b, f"st{index}"
        )
        taps.append(previous)
    return ShiftRegister(
        net=b.build(),
        stages=stages,
        data_in=data_in,
        clock_a=clock_a,
        clock_b=clock_b,
        taps=taps,
    )


@dataclass(frozen=True)
class RegisterFile:
    """A word-organized dynamic register file with one read port."""

    net: Network
    words: int
    width: int
    addr_bits: int
    write_enable: str
    clock: str
    data_in: list[str] = field(default_factory=list)  # MSB first
    data_out: list[str] = field(default_factory=list)  # MSB first
    addr: list[str] = field(default_factory=list)  # MSB first
    cells: list[list[str]] = field(default_factory=list)  # [word][bit]


def build_register_file(words: int, width: int) -> RegisterFile:
    """A ``words x width`` register file from dynamic latches.

    Each word is a row of pass-transistor latches written when its
    select line and the write clock are high; the read port is a
    pass-transistor mux onto per-bit output busses with restoring
    inverters.  Word count must be a power of two.
    """
    if words < 2 or words & (words - 1):
        raise NetworkError("word count must be a power of two >= 2")
    addr_bits = words.bit_length() - 1
    b = NetworkBuilder()
    write_enable = b.input("we")
    clock = b.input("phi")
    data_in = declare_bus(b, "d", width, as_input=True)
    addr = declare_bus(b, "adr", width=addr_bits, as_input=True)

    comp = decode.complement_drivers(b, addr, "adr")
    selects = decode.nor_decoder(b, addr, comp, "word")
    write_clock = nmos.and_gate(b, [write_enable, clock], "wclk")
    write_lines = [
        nmos.and_gate(b, [selects[w], write_clock], f"wl{w}")
        for w in range(words)
    ]

    read_bus = [b.node(f"rb{k}", size="large") for k in range(width)]
    cells: list[list[str]] = []
    for w in range(words):
        row: list[str] = []
        for k in range(width):
            cell = b.node(f"r{w}_{k}")
            b.ntrans(
                write_lines[w], data_in[k], cell, strength="strong",
                name=f"w{w}_{k}",
            )
            # Static read port: the cell drives the bus through an
            # inverter so reading never disturbs the stored charge (a
            # bare pass transistor would charge-share the large bus into
            # the small cell).
            read_driver = nmos.inverter(b, cell, f"r{w}_{k}.rd")
            b.ntrans(
                selects[w], read_driver, read_bus[k], strength="strong",
                name=f"r{w}_{k}.read",
            )
            row.append(cell)
        cells.append(row)

    data_out = [
        nmos.inverter(b, read_bus[k], f"q{width - 1 - k}")
        for k in range(width)
    ]
    return RegisterFile(
        net=b.build(),
        words=words,
        width=width,
        addr_bits=addr_bits,
        write_enable=write_enable,
        clock=clock,
        data_in=data_in,
        data_out=data_out,
        addr=addr,
        cells=cells,
    )
