"""Parameterized nMOS dynamic RAM -- the paper's device under test.

The paper evaluates FMOSSIM on two dynamic RAM circuits, RAM64 (378
transistors, 229 nodes) and RAM256 (1148 transistors, 695 nodes), chosen
because "they could easily be scaled in size" and fully tested by
marching sequences.  This module generates the same family: an N-word by
1-bit dynamic RAM built from three-transistor cells, with row/column NOR
decoders, precharged read bit lines, refresh-on-access write-back (the
classic 3T-array discipline: every access reads the selected row and
rewrites it, substituting ``din`` in the addressed column on writes), a
dynamic input latch and a latched single data output.  The structure
inventory matches the paper's: "logic gates, bidirectional pass
transistors, dynamic latches, precharged busses, and three-transistor
dynamic memory elements", with a single data output (low observability)
and large-size bit lines (poor locality -- deliberately a hard case for a
switch-level simulator).

Access protocol (see ``repro.patterns.clocking``; one "pattern" = six
input settings, as in the paper):

1. ``phi_p=1``   precharge read bit lines and read bus high;
2. ``phi_p=0`` and address/``we``/``din`` set;
3. ``phi_r=1``   read word lines fire; the selected row discharges its
   read bit lines where a 1 is stored; the addressed column's value is
   latched at the output; ``din`` is latched onto the write data bus;
4. ``phi_r=0``   bit lines hold the read row by charge;
5. ``phi_w=1``   write word lines fire; every column writes back the
   value just read (refresh), except the addressed column during a
   write, which takes ``din``;
6. ``phi_w=0``   end of cycle.

Exact transistor/node counts differ slightly from the authors' (their
layouts are not published); ours land in the same range and are recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import decode, memory, nmos
from ..errors import NetworkError
from ..netlist.builder import (
    NetworkBuilder,
    bus_assignment,
    declare_bus,
)
from ..switchlevel.network import Network


@dataclass(frozen=True)
class Ram:
    """A generated RAM: the network plus its port and structure map."""

    net: Network
    rows: int
    cols: int
    row_bits: int
    col_bits: int
    # port names (all inputs except dout)
    phi_p: str
    phi_r: str
    phi_w: str
    we: str
    din: str
    dout: str
    row_addr: list[str] = field(default_factory=list)  # MSB first
    col_addr: list[str] = field(default_factory=list)  # MSB first
    # structure map (node names)
    store: list[list[str]] = field(default_factory=list)  # [row][col]
    write_bitlines: list[str] = field(default_factory=list)
    read_bitlines: list[str] = field(default_factory=list)
    control_inputs: list[str] = field(default_factory=list)

    @property
    def words(self) -> int:
        """Total number of bits (= words, the RAM is 1 bit wide)."""
        return self.rows * self.cols

    @property
    def name(self) -> str:
        return f"RAM{self.words}"

    def address_assignment(self, row: int, col: int) -> dict[str, int]:
        """Input settings that select cell (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise NetworkError(
                f"cell ({row}, {col}) outside {self.rows}x{self.cols} array"
            )
        assignment = bus_assignment("ra", row, self.row_bits)
        assignment.update(bus_assignment("ca", col, self.col_bits))
        return assignment

    def cell_store(self, row: int, col: int) -> str:
        """Name of the storage node of cell (row, col)."""
        return self.store[row][col]

    def bitline_adjacent_pairs(self) -> list[tuple[str, str]]:
        """Physically adjacent bit-line pairs, for bridging faults.

        Layout order within the array is ``wbl0 rbl0 wbl1 rbl1 ...``; a
        pair is adjacent when consecutive in that order.
        """
        order: list[str] = []
        for j in range(self.cols):
            order.append(self.write_bitlines[j])
            order.append(self.read_bitlines[j])
        return list(zip(order, order[1:]))


def build_ram(rows: int, cols: int) -> Ram:
    """Generate a ``rows x cols`` 1-bit-wide dynamic RAM.

    Both dimensions must be powers of two (the decoders are full NOR
    decoders over binary addresses).
    """
    row_bits = _log2_exact(rows, "rows")
    col_bits = _log2_exact(cols, "cols")
    b = NetworkBuilder()

    # --- primary inputs ---------------------------------------------------
    phi_p = b.input("phi_p")
    phi_r = b.input("phi_r")
    phi_w = b.input("phi_w")
    we = b.input("we")
    din = b.input("din")
    row_addr = declare_bus(b, "ra", row_bits, as_input=True)
    col_addr = declare_bus(b, "ca", col_bits, as_input=True)

    # --- address decoding ----------------------------------------------------
    row_comp = decode.complement_drivers(b, row_addr, "ra")
    col_comp = decode.complement_drivers(b, col_addr, "ca")
    row_sel = decode.nor_decoder(b, row_addr, row_comp, "row")
    col_sel = decode.nor_decoder(b, col_addr, col_comp, "col")

    # --- word lines: per-row read and write enables -------------------------
    read_wordlines = decode.enabled_lines(b, row_sel, phi_r, "rwl")
    write_wordlines = decode.enabled_lines(b, row_sel, phi_w, "wwl")

    # --- shared busses ---------------------------------------------------
    read_bus = memory.precharged_bus(b, "rbus", phi_p)
    # Dynamic input latch: din is sampled onto the write data bus during
    # the read phase and held by charge through the write phase.
    write_bus = b.node("dbus", size=memory.BUS_SIZE)
    nmos.pass_transistor(b, phi_r, din, write_bus)

    # --- columns ------------------------------------------------------------
    write_bitlines: list[str] = []
    read_bitlines: list[str] = []
    for j in range(cols):
        wbl = b.node(f"wbl{j}", size=memory.BUS_SIZE)
        rbl = memory.precharged_bus(b, f"rbl{j}", phi_p)
        write_bitlines.append(wbl)
        read_bitlines.append(rbl)
        # Column read mux onto the shared read bus.
        nmos.pass_transistor(b, col_sel[j], rbl, read_bus)
        # Write path: din (via the latched write bus) when this column is
        # addressed during a write; refresh write-back otherwise.
        write_select = nmos.and_gate(b, [col_sel[j], we], f"wsel{j}")
        write_back = nmos.inverter(b, write_select, f"wbk{j}")
        refresh_value = nmos.inverter(b, rbl, f"ref{j}")
        nmos.pass_transistor(b, write_select, write_bus, wbl)
        nmos.pass_transistor(b, write_back, refresh_value, wbl)

    # --- cell array ------------------------------------------------------
    store: list[list[str]] = []
    for i in range(rows):
        row_nodes: list[str] = []
        for j in range(cols):
            cell = memory.dram_cell_3t(
                b,
                write_bitlines[j],
                read_bitlines[j],
                write_wordlines[i],
                read_wordlines[i],
                f"c{i}_{j}",
            )
            row_nodes.append(cell.store)
        store.append(row_nodes)

    # --- output path: sense inverter, dynamic output latch, buffer ----------
    sensed = nmos.inverter(b, read_bus, "sense")
    out_latch, latch_inv = memory.dynamic_latch(b, sensed, phi_r, "doutb")
    dout = nmos.inverter(b, latch_inv, "dout")
    del out_latch  # structure retained in the netlist; name unused here

    return Ram(
        net=b.build(),
        rows=rows,
        cols=cols,
        row_bits=row_bits,
        col_bits=col_bits,
        phi_p=phi_p,
        phi_r=phi_r,
        phi_w=phi_w,
        we=we,
        din=din,
        dout=dout,
        row_addr=row_addr,
        col_addr=col_addr,
        store=store,
        write_bitlines=write_bitlines,
        read_bitlines=read_bitlines,
        control_inputs=[phi_p, phi_r, phi_w, we, din],
    )


def ram16() -> Ram:
    """4x4 instance: the small, fast DUT used by tests and CI benchmarks."""
    return build_ram(4, 4)


def ram64() -> Ram:
    """8x8 instance: the paper's RAM64-scale device."""
    return build_ram(8, 8)


def ram256() -> Ram:
    """16x16 instance: the paper's RAM256-scale device."""
    return build_ram(16, 16)


def _log2_exact(value: int, what: str) -> int:
    if value < 2 or value & (value - 1):
        raise NetworkError(f"{what} must be a power of two >= 2, got {value}")
    return value.bit_length() - 1
