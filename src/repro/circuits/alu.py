"""A small nMOS ripple-carry ALU (the conclusion's other use case).

Operations (two select lines)::

    op1 op0   function
    0   0     AND
    0   1     OR
    1   0     XOR
    1   1     ADD (ripple carry, carry-out exposed)

Built entirely from the nMOS cell library so every internal node is a
realistic ratioed-logic node; used by the ALU test-development example
and by integration tests of transistor-level faults in datapath logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import nmos
from ..errors import NetworkError
from ..netlist.builder import NetworkBuilder, declare_bus
from ..switchlevel.network import Network


@dataclass(frozen=True)
class Alu:
    """Port map of a generated ALU."""

    net: Network
    width: int
    a: list[str] = field(default_factory=list)  # MSB first
    b: list[str] = field(default_factory=list)  # MSB first
    op: list[str] = field(default_factory=list)  # [op1, op0]
    result: list[str] = field(default_factory=list)  # MSB first
    carry_out: str = ""

    def op_assignment(self, operation: str) -> dict[str, int]:
        """Input settings selecting an operation by name."""
        table = {"and": (0, 0), "or": (0, 1), "xor": (1, 0), "add": (1, 1)}
        try:
            op1, op0 = table[operation]
        except KeyError:
            raise NetworkError(
                f"unknown ALU operation {operation!r}"
            ) from None
        return {self.op[0]: op1, self.op[1]: op0}


def build_alu(width: int) -> Alu:
    """Generate a ``width``-bit ALU; returns its port map."""
    if width < 1:
        raise NetworkError("ALU width must be at least 1")
    builder = NetworkBuilder()
    bus_a = declare_bus(builder, "a", width, as_input=True)
    bus_b = declare_bus(builder, "b", width, as_input=True)
    op1 = builder.input("op1")
    op0 = builder.input("op0")
    op1_bar = nmos.inverter(builder, op1, "op1b")
    op0_bar = nmos.inverter(builder, op0, "op0b")

    # Decoded one-hot operation lines.
    sel_and = nmos.and_gate(builder, [op1_bar, op0_bar], "sel_and")
    sel_or = nmos.and_gate(builder, [op1_bar, op0], "sel_or")
    sel_xor = nmos.and_gate(builder, [op1, op0_bar], "sel_xor")
    sel_add = nmos.and_gate(builder, [op1, op0], "sel_add")

    results: list[str] = []
    carry = builder.gnd  # carry-in = 0
    # Build from the LSB so the ripple carry chains upward.
    for k in range(width - 1, -1, -1):
        bit = width - 1 - k
        a_k, b_k = bus_a[k], bus_b[k]
        and_k = nmos.and_gate(builder, [a_k, b_k], f"and{bit}")
        or_k = nmos.or_gate(builder, [a_k, b_k], f"or{bit}")
        xor_k = nmos.xor_gate(builder, a_k, b_k, f"xor{bit}")
        sum_k = nmos.xor_gate(builder, xor_k, carry, f"sum{bit}")
        # carry_out = (a AND b) OR (carry AND (a XOR b))
        carry_term = nmos.and_gate(builder, [carry, xor_k], f"cand{bit}")
        carry = nmos.or_gate(builder, [and_k, carry_term], f"cout{bit}")
        # Output mux: one pass transistor per decoded op line.
        out_k = builder.node(f"res{bit}")
        nmos.pass_transistor(builder, sel_and, and_k, out_k)
        nmos.pass_transistor(builder, sel_or, or_k, out_k)
        nmos.pass_transistor(builder, sel_xor, xor_k, out_k)
        nmos.pass_transistor(builder, sel_add, sum_k, out_k)
        results.append(out_k)

    results.reverse()  # back to MSB-first
    return Alu(
        net=builder.build(),
        width=width,
        a=bus_a,
        b=bus_b,
        op=[op1, op0],
        result=results,
        carry_out=carry,
    )
