"""Generated demonstration circuits: RAMs, registers, a small ALU."""

from .alu import Alu, build_alu
from .ram import Ram, build_ram, ram16, ram256, ram64
from .registers import (
    RegisterFile,
    ShiftRegister,
    build_register_file,
    build_shift_register,
)
from .sram import Sram, build_sram

__all__ = [
    "Ram",
    "build_ram",
    "ram16",
    "ram64",
    "ram256",
    "Sram",
    "build_sram",
    "Alu",
    "build_alu",
    "ShiftRegister",
    "build_shift_register",
    "RegisterFile",
    "build_register_file",
]
