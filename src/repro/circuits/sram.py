"""A CMOS static RAM (6T cells) -- the model's CMOS side at system scale.

The paper's network model covers CMOS as well as nMOS ("both nMOS and
CMOS circuits can be modeled"); the evaluation circuits are nMOS DRAMs,
so this SRAM is the reproduction's demonstration that the same
simulator, fault models and pattern machinery work unchanged on a CMOS
design with ratioed *write* behavior:

* each cell is a pair of cross-coupled **weak** CMOS inverters plus two
  strong n-type access transistors;
* both bit lines are precharged high; a read lets the cell pull one
  side low (the weak internal driver beats the bit line's charge);
* a write drives the bit lines differentially at full strength, which
  overpowers the weak feedback through the access transistors.

Access protocol (four input settings per pattern -- SRAM needs no
separate write-back phase):

1. ``phi_p=1`` precharge both bit lines of every column;
2. ``phi_p=0`` plus address / ``we`` / ``din``;
3. ``phi_a=1`` word line on: cell reads onto (or is written from) the
   bit lines; output latched;
4. ``phi_a=0`` end of access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import cmos, decode, memory, nmos
from ..errors import NetworkError
from ..netlist.builder import NetworkBuilder, bus_assignment, declare_bus
from ..patterns.clocking import WRITE, Phase, RamOp, TestPattern
from ..switchlevel.network import Network

#: Strength of the cell's internal feedback inverters.
CELL_STRENGTH = "weak"


@dataclass(frozen=True)
class Sram:
    """A generated CMOS SRAM with its port and structure map."""

    net: Network
    rows: int
    cols: int
    row_bits: int
    col_bits: int
    phi_p: str
    phi_a: str
    we: str
    din: str
    dout: str
    row_addr: list[str] = field(default_factory=list)
    col_addr: list[str] = field(default_factory=list)
    store: list[list[str]] = field(default_factory=list)  # true side
    store_bar: list[list[str]] = field(default_factory=list)
    bitlines: list[str] = field(default_factory=list)
    bitlines_bar: list[str] = field(default_factory=list)

    @property
    def words(self) -> int:
        return self.rows * self.cols

    @property
    def name(self) -> str:
        return f"SRAM{self.words}"

    def address_assignment(self, row: int, col: int) -> dict[str, int]:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise NetworkError(
                f"cell ({row}, {col}) outside {self.rows}x{self.cols} array"
            )
        assignment = bus_assignment("ra", row, self.row_bits)
        assignment.update(bus_assignment("ca", col, self.col_bits))
        return assignment

    def expand_op(self, op: RamOp) -> TestPattern:
        """Four-phase clock cycle for one access."""
        address = self.address_assignment(op.row, op.col)
        setup: dict[str, int] = {
            self.phi_p: 0,
            self.we: 1 if op.op == WRITE else 0,
            self.din: op.value if op.op == WRITE else 0,
        }
        setup.update(address)
        return TestPattern(
            label=op.label,
            phases=(
                Phase({self.phi_p: 1, self.phi_a: 0}),
                Phase(setup),
                Phase({self.phi_a: 1}),
                Phase({self.phi_a: 0}),
            ),
        )

    def expand_ops(self, ops) -> list[TestPattern]:
        return [self.expand_op(op) for op in ops]


def build_sram(rows: int, cols: int) -> Sram:
    """Generate a ``rows x cols`` 1-bit-wide CMOS SRAM."""
    row_bits = _log2_exact(rows, "rows")
    col_bits = _log2_exact(cols, "cols")
    b = NetworkBuilder()

    phi_p = b.input("phi_p")
    phi_a = b.input("phi_a")
    we = b.input("we")
    din = b.input("din")
    row_addr = declare_bus(b, "ra", row_bits, as_input=True)
    col_addr = declare_bus(b, "ca", col_bits, as_input=True)

    # CMOS address decode (NOR decoders built from CMOS gates).
    row_comp = [cmos.inverter(b, line, f"ra.b{k}")
                for k, line in enumerate(row_addr)]
    col_comp = [cmos.inverter(b, line, f"ca.b{k}")
                for k, line in enumerate(col_addr)]
    row_sel = _cmos_decoder(b, row_addr, row_comp, "row")
    col_sel = _cmos_decoder(b, col_addr, col_comp, "col")
    wordlines = [
        cmos.and_gate(b, [row_sel[i], phi_a], f"wl{i}")
        for i in range(rows)
    ]

    din_bar = cmos.inverter(b, din, "din.b")
    read_bus = memory.precharged_bus(b, "rbus", phi_p)

    bitlines: list[str] = []
    bitlines_bar: list[str] = []
    for j in range(cols):
        bl = memory.precharged_bus(b, f"bl{j}", phi_p)
        blb = memory.precharged_bus(b, f"blb{j}", phi_p)
        bitlines.append(bl)
        bitlines_bar.append(blb)
        # Write drivers: differential, gated by (column, we, phi_a).
        write_select = cmos.and_gate(b, [col_sel[j], we, phi_a], f"wsel{j}")
        nmos.pass_transistor(b, write_select, din, bl)
        nmos.pass_transistor(b, write_select, din_bar, blb)
        # Read mux: the true bit line onto the shared read bus.
        nmos.pass_transistor(b, col_sel[j], bl, read_bus)

    store: list[list[str]] = []
    store_bar: list[list[str]] = []
    for i in range(rows):
        row_nodes: list[str] = []
        row_bar_nodes: list[str] = []
        for j in range(cols):
            true_node = b.node(f"s{i}_{j}.t")
            bar_node = b.node(f"s{i}_{j}.b")
            # Cross-coupled weak inverters.
            cmos.inverter(b, true_node, bar_node, strength=CELL_STRENGTH)
            cmos.inverter(b, bar_node, true_node, strength=CELL_STRENGTH)
            # Strong access transistors to both bit lines.
            b.ntrans(wordlines[i], bitlines[j], true_node,
                     strength="strong", name=f"s{i}_{j}.at")
            b.ntrans(wordlines[i], bitlines_bar[j], bar_node,
                     strength="strong", name=f"s{i}_{j}.ab")
            row_nodes.append(true_node)
            row_bar_nodes.append(bar_node)
        store.append(row_nodes)
        store_bar.append(row_bar_nodes)

    sensed = cmos.inverter(b, read_bus, "sense")
    dout = cmos.inverter(b, sensed, "dout")

    return Sram(
        net=b.build(),
        rows=rows,
        cols=cols,
        row_bits=row_bits,
        col_bits=col_bits,
        phi_p=phi_p,
        phi_a=phi_a,
        we=we,
        din=din,
        dout=dout,
        row_addr=row_addr,
        col_addr=col_addr,
        store=store,
        store_bar=store_bar,
        bitlines=bitlines,
        bitlines_bar=bitlines_bar,
    )


def _cmos_decoder(b, true_lines, comp_lines, prefix):
    width = len(true_lines)
    selects = []
    for i in range(1 << width):
        inputs = []
        for k in range(width):
            bit = (i >> (width - 1 - k)) & 1
            inputs.append(true_lines[k] if bit == 0 else comp_lines[k])
        selects.append(cmos.nor(b, inputs, f"{prefix}.sel{i}"))
    return selects


def _log2_exact(value: int, what: str) -> int:
    if value < 2 or value & (value - 1):
        raise NetworkError(f"{what} must be a power of two >= 2, got {value}")
    return value.bit_length() - 1
