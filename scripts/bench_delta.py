#!/usr/bin/env python3
"""Diff freshly emitted BENCH_*.json files against committed baselines.

Usage::

    python scripts/bench_delta.py BASELINE_DIR [CURRENT_DIR]

``BASELINE_DIR`` holds the committed ``BENCH_*.json`` files (CI copies
them aside before the test run overwrites them); ``CURRENT_DIR``
defaults to the working tree root.  Prints a GitHub-flavored Markdown
table of every numeric leaf whose key mentions seconds (wall times,
per-shard times), speedup, overhead, pruned-fault counts
(``BENCH_static``'s static-analysis yield), or the shard scheduler's
balance (``imbalance_ratio``, per-block ``block_faults``) with the
relative delta, suitable for piping into ``$GITHUB_STEP_SUMMARY``.
Numeric lists are flattened to indexed leaves (``path[i]``).

Speedup metrics are only comparable between machines with the same
parallelism: a shard speedup recorded on a 1-CPU box says nothing
about one measured on a 4-CPU runner.  When both files record a
``cpus`` field and they differ, speedup deltas are annotated as
skipped instead of compared.

Warn-only by design: the exit code is always 0 (absolute times from
shared CI runners are too noisy to gate on), so the job summary is
where regressions get noticed.
"""

from __future__ import annotations

import glob
import json
import os
import sys


#: Substrings a leaf's key must contain to be worth comparing.
_METRIC_KEYS = (
    "seconds",
    "speedup",
    "pruned",
    "overhead",
    "imbalance",
    "block_faults",
)


def _numeric_leaves(data, prefix="", key=""):
    """Flatten nested dicts/lists to {dotted.path: number} for metric
    keys.  List items inherit their container's key and get indexed
    paths (``runs.4.shard_wall_seconds[2]``).

    Keys prefixed ``min_``/``max_`` are configured pass thresholds the
    benchmarks archive for context (e.g. ``min_speedup`` in
    ``BENCH_collapse.json``), not measurements -- comparing them would
    only add noise rows.
    """
    leaves = {}
    if isinstance(data, dict):
        for child_key, value in sorted(data.items()):
            path = f"{prefix}.{child_key}" if prefix else str(child_key)
            leaves.update(_numeric_leaves(value, path, child_key))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            leaves.update(_numeric_leaves(value, f"{prefix}[{index}]", key))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        if not key.startswith(("min_", "max_")) and any(
            metric in key for metric in _METRIC_KEYS
        ):
            leaves[prefix] = float(data)
    return leaves


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    baseline_dir = argv[0]
    current_dir = argv[1] if len(argv) > 1 else "."

    rows = []
    for current_path in sorted(
        glob.glob(os.path.join(current_dir, "BENCH_*.json"))
    ):
        name = os.path.basename(current_path)
        with open(current_path, "r", encoding="utf-8") as stream:
            current_raw = json.load(stream)
        current = _numeric_leaves(current_raw)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            for metric, value in current.items():
                rows.append((name, metric, None, value, None))
            continue
        with open(baseline_path, "r", encoding="utf-8") as stream:
            baseline_raw = json.load(stream)
        baseline = _numeric_leaves(baseline_raw)
        cpu_note = None
        baseline_cpus = baseline_raw.get("cpus")
        current_cpus = current_raw.get("cpus")
        if (
            baseline_cpus is not None
            and current_cpus is not None
            and baseline_cpus != current_cpus
        ):
            cpu_note = f"(skipped: cpus {baseline_cpus} vs {current_cpus})"
        for metric, value in current.items():
            # Parallelism-shape metrics only compare on equal machines.
            note = (
                cpu_note
                if ("speedup" in metric or "imbalance" in metric)
                else None
            )
            rows.append((name, metric, baseline.get(metric), value, note))

    print("### Benchmark delta vs committed baselines (warn-only)")
    print()
    if not rows:
        print("_No BENCH_*.json files found._")
        return 0
    print("| file | metric | baseline | current | delta |")
    print("| --- | --- | ---: | ---: | ---: |")
    for name, metric, old, new, note in rows:
        if old is None:
            delta = "(new)"
            old_cell = "-"
        else:
            old_cell = f"{old:.4f}"
            if note is not None:
                delta = note
            else:
                delta = f"{(new - old) / old:+.1%}" if old else "n/a"
        print(f"| {name} | {metric} | {old_cell} | {new:.4f} | {delta} |")
    print()
    print(
        "_Wall clocks from shared runners are noisy; treat deltas as a "
        "hint, not a verdict._"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
