#!/usr/bin/env python3
"""Diff freshly emitted BENCH_*.json files against committed baselines.

Usage::

    python scripts/bench_delta.py BASELINE_DIR [CURRENT_DIR]

``BASELINE_DIR`` holds the committed ``BENCH_*.json`` files (CI copies
them aside before the test run overwrites them); ``CURRENT_DIR``
defaults to the working tree root.  Prints a GitHub-flavored Markdown
table of every numeric leaf whose key mentions seconds (wall times,
per-shard times), speedup, or pruned-fault counts (``BENCH_static``'s
static-analysis yield) with the relative delta, suitable for piping
into ``$GITHUB_STEP_SUMMARY``.

Speedup metrics are only comparable between machines with the same
parallelism: a shard speedup recorded on a 1-CPU box says nothing
about one measured on a 4-CPU runner.  When both files record a
``cpus`` field and they differ, speedup deltas are annotated as
skipped instead of compared.

Warn-only by design: the exit code is always 0 (absolute times from
shared CI runners are too noisy to gate on), so the job summary is
where regressions get noticed.
"""

from __future__ import annotations

import glob
import json
import os
import sys


def _numeric_leaves(data, prefix=""):
    """Flatten nested dicts to {dotted.path: number} for timing keys.

    Keys prefixed ``min_``/``max_`` are configured pass thresholds the
    benchmarks archive for context (e.g. ``min_speedup`` in
    ``BENCH_collapse.json``), not measurements -- comparing them would
    only add noise rows.
    """
    leaves = {}
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                leaves.update(_numeric_leaves(value, path))
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                if key.startswith(("min_", "max_")):
                    continue
                if (
                    "seconds" in key
                    or "speedup" in key
                    or "pruned" in key
                ):
                    leaves[path] = float(value)
    return leaves


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    baseline_dir = argv[0]
    current_dir = argv[1] if len(argv) > 1 else "."

    rows = []
    for current_path in sorted(
        glob.glob(os.path.join(current_dir, "BENCH_*.json"))
    ):
        name = os.path.basename(current_path)
        with open(current_path, "r", encoding="utf-8") as stream:
            current_raw = json.load(stream)
        current = _numeric_leaves(current_raw)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            for metric, value in current.items():
                rows.append((name, metric, None, value, None))
            continue
        with open(baseline_path, "r", encoding="utf-8") as stream:
            baseline_raw = json.load(stream)
        baseline = _numeric_leaves(baseline_raw)
        cpu_note = None
        baseline_cpus = baseline_raw.get("cpus")
        current_cpus = current_raw.get("cpus")
        if (
            baseline_cpus is not None
            and current_cpus is not None
            and baseline_cpus != current_cpus
        ):
            cpu_note = f"(skipped: cpus {baseline_cpus} vs {current_cpus})"
        for metric, value in current.items():
            note = cpu_note if "speedup" in metric else None
            rows.append((name, metric, baseline.get(metric), value, note))

    print("### Benchmark delta vs committed baselines (warn-only)")
    print()
    if not rows:
        print("_No BENCH_*.json files found._")
        return 0
    print("| file | metric | baseline | current | delta |")
    print("| --- | --- | ---: | ---: | ---: |")
    for name, metric, old, new, note in rows:
        if old is None:
            delta = "(new)"
            old_cell = "-"
        else:
            old_cell = f"{old:.4f}"
            if note is not None:
                delta = note
            else:
                delta = f"{(new - old) / old:+.1%}" if old else "n/a"
        print(f"| {name} | {metric} | {old_cell} | {new:.4f} | {delta} |")
    print()
    print(
        "_Wall clocks from shared runners are noisy; treat deltas as a "
        "hint, not a verdict._"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
