"""Run every paper experiment at the paper's own scale.

Produces the numbers recorded in EXPERIMENTS.md:

* FIG1: RAM64, Test Sequence 1 (407 patterns), 428 sampled faults;
* FIG2: RAM64, Test Sequence 2 (327 patterns), same faults;
* TAB1: RAM64 vs RAM256 scaling (RAM256: 1447 patterns, all faults);
* FIG3: RAM256, fault-sample sweep.

Budget roughly an hour of CPU in pure Python.  Results (rendered text,
JSON and per-pattern CSV) land in ``results/paper_scale/``.

Run:  python scripts/run_paper_experiments.py [--out DIR] [--skip-256]
                                              [--backend NAME] [--jobs N]
                                              [--inner-backend NAME]
                                              [--lane-width W]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cli import add_backend_option_arguments, backend_options_from_args
from repro.core.backends import available_backends
from repro.harness import experiments
from repro.harness.results import (
    write_curve_csv,
    write_fig3_csv,
    write_json,
)


def save(result, out_dir: str, name: str, csv_writer=None) -> None:
    text = result.render()
    print(f"\n===== {name} =====")
    print(text)
    with open(os.path.join(out_dir, f"{name}.txt"), "w") as stream:
        stream.write(text)
    with open(os.path.join(out_dir, f"{name}.json"), "w") as stream:
        write_json(result, stream)
    if csv_writer is not None:
        with open(os.path.join(out_dir, f"{name}.csv"), "w") as stream:
            csv_writer(result, stream)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--out", default="results/paper_scale")
    parser.add_argument(
        "--policy",
        choices=["any", "hard"],
        default="any",
        help="detection policy: 'any' matches the paper's drop rule "
        "(any output difference, X included); 'hard' requires definite "
        "differing values",
    )
    parser.add_argument(
        "--skip-256",
        action="store_true",
        help="skip the RAM256 experiments (TAB1 large half and FIG3)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="concurrent",
        help="fault-simulation strategy; recorded in every emitted "
        "result row so the perf trajectory stays attributable "
        "(default: concurrent)",
    )
    add_backend_option_arguments(parser)
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    policy = args.policy
    backend = args.backend
    backend_options = backend_options_from_args(args)

    print(
        f"FIG1: RAM64 / sequence 1 / 428 faults / {backend} ...", flush=True
    )
    fig1 = experiments.run_fig1(
        8, 8, n_faults=428, detection_policy=policy, backend=backend,
        backend_options=backend_options,
    )
    save(fig1, args.out, "fig1_ram64_seq1", write_curve_csv)

    print(
        f"FIG2: RAM64 / sequence 2 / 428 faults / {backend} ...", flush=True
    )
    fig2 = experiments.run_fig2(
        8, 8, n_faults=428, detection_policy=policy, backend=backend,
        backend_options=backend_options,
    )
    save(fig2, args.out, "fig2_ram64_seq2", write_curve_csv)

    if not args.skip_256:
        print("TAB1: RAM64 vs RAM256 scaling (slow) ...", flush=True)
        scaling = experiments.run_scaling(
            small=(8, 8), large=(16, 16), n_faults=None,
            detection_policy=policy, backend=backend,
            backend_options=backend_options,
        )
        save(scaling, args.out, "tab1_scaling")

        print("FIG3: RAM256 fault-sample sweep (slow) ...", flush=True)
        fig3 = experiments.run_fig3(
            16, 16, fault_counts=(100, 400, 800, 1382),
            detection_policy=policy, backend=backend,
            backend_options=backend_options,
        )
        save(fig3, args.out, "fig3_ram256", write_fig3_csv)

    print(f"\nall results written to {args.out}/", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
