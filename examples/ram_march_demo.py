"""The paper's main experiment at demo scale: marching tests on a DRAM.

Builds a 16-bit (4x4) version of the paper's dynamic RAM, fault-simulates
the full stuck-at + bit-line-short universe under Test Sequence 1, and
prints the Figure-1 style curves: cumulative detections rising while
seconds-per-pattern falls as severe faults are detected and dropped.

Run:  python examples/ram_march_demo.py [rows cols]
"""

import sys

from repro.circuits import build_ram
from repro.core import (
    ConcurrentFaultSimulator,
    estimate_serial_seconds,
    ram_fault_universe,
)
from repro.harness import dual_chart, format_seconds
from repro.patterns import sequence1


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    ram = build_ram(rows, cols)
    sequence = sequence1(ram)
    faults = ram_fault_universe(ram)
    print(
        f"{ram.name}: {ram.net.n_transistors} transistors, "
        f"{ram.net.n_nodes} nodes; {len(sequence)} patterns, "
        f"{len(faults)} faults"
    )

    good = ConcurrentFaultSimulator(ram.net, [], observed=[ram.dout])
    good_report = good.run(sequence.patterns)
    print(f"good circuit alone: {format_seconds(good_report.total_seconds)}")

    simulator = ConcurrentFaultSimulator(ram.net, faults, observed=[ram.dout])
    report = simulator.run(sequence.patterns)
    print(
        f"concurrent fault simulation: "
        f"{format_seconds(report.total_seconds)}; "
        f"{report.detected}/{report.n_faults} detected "
        f"({report.coverage:.1%})"
    )
    estimate = estimate_serial_seconds(
        report, good_report.average_seconds_per_pattern()
    )
    print(
        f"serial estimate (paper's method): {format_seconds(estimate)} "
        f"-> concurrent/serial ratio "
        f"{estimate / report.total_seconds:.1f}"
    )

    print()
    print(
        dual_chart(
            report.cumulative_detections(),
            report.seconds_per_pattern(),
            title=f"{ram.name} / {sequence.name}: the Figure-1 shape",
        )
    )

    head = sequence.head_length
    head_seconds = report.section_seconds(0, head)
    print(
        f"head (control + row/col marches, {head} patterns): "
        f"{format_seconds(head_seconds)} "
        f"({head_seconds / report.total_seconds:.0%} of total)"
    )

    # Where is coverage weak?  (The conclusion's use case.)
    undetected = sorted(
        set(range(1, len(faults) + 1)) - report.log.detected_circuits()
    )
    print(f"\nundetected faults ({len(undetected)}):")
    for cid in undetected[:10]:
        print(f"  {faults[cid - 1].describe()}")
    if len(undetected) > 10:
        print(f"  ... and {len(undetected) - 10} more")


if __name__ == "__main__":
    main()
