"""Test development for an ALU -- the conclusion's workflow.

"Even when developing a test for a small section of an integrated
circuit (such as an ALU or a register array), the fault simulator
provides information that is hard to obtain by any other means.  It
quickly directs the designer to those areas of the circuit that require
further tests."

This example plays that workflow: start from a naive vector set for a
4-bit nMOS ALU, fault-simulate all transistor stuck faults, inspect the
undetected list, and extend the vectors until coverage stops improving.

Run:  python examples/alu_test_development.py
"""

from repro.circuits import build_alu
from repro.core import ConcurrentFaultSimulator, transistor_stuck_universe
from repro.harness import render_table
from repro.netlist.builder import bus_assignment
from repro.patterns import Phase, TestPattern


def vectors_to_patterns(alu, vectors):
    patterns = []
    for index, (op, a, b) in enumerate(vectors):
        settings = alu.op_assignment(op)
        settings.update(bus_assignment("a", a, alu.width))
        settings.update(bus_assignment("b", b, alu.width))
        patterns.append(
            TestPattern(f"{op}({a},{b})", (Phase(settings),))
        )
    return patterns


def coverage_of(alu, faults, vectors):
    observed = list(alu.result) + [alu.carry_out]
    simulator = ConcurrentFaultSimulator(alu.net, faults, observed)
    report = simulator.run(vectors_to_patterns(alu, vectors))
    undetected = [
        faults[cid - 1]
        for cid in sorted(
            set(range(1, len(faults) + 1)) - report.log.detected_circuits()
        )
    ]
    return report, undetected


def main() -> None:
    alu = build_alu(4)
    faults = transistor_stuck_universe(alu.net)
    print(
        f"4-bit ALU: {alu.net.n_transistors} transistors, "
        f"{len(faults)} transistor stuck faults\n"
    )

    # Round 1: the vectors a functional test might start from.
    naive = [("add", 1, 1), ("and", 15, 15), ("or", 0, 0)]
    report, undetected = coverage_of(alu, faults, naive)
    rounds = [("naive (3 vectors)", len(naive), report.coverage)]
    print(f"round 1: {report.coverage:.1%} coverage; sample of what's left:")
    for fault in undetected[:6]:
        print(f"  {fault.describe()}")

    # Round 2: the undetected list points at the XOR/carry logic and the
    # unselected mux legs -> exercise every op with asymmetric operands.
    better = naive + [
        ("xor", 5, 3),
        ("add", 15, 1),
        ("add", 10, 5),
        ("or", 10, 5),
        ("and", 12, 10),
    ]
    report, undetected = coverage_of(alu, faults, better)
    rounds.append(("+ op/operand variety", len(better), report.coverage))
    print(f"\nround 2: {report.coverage:.1%} coverage; still alive:")
    for fault in undetected[:6]:
        print(f"  {fault.describe()}")

    # Round 3: walk a one through both operand buses to toggle every bit
    # position in both directions, and hit the carry chain end to end.
    thorough = better + [
        ("xor", value, 0) for value in (1, 2, 4, 8)
    ] + [
        ("xor", 0, value) for value in (1, 2, 4, 8)
    ] + [
        ("add", 8, 8),
        ("add", 15, 15),
        ("and", 5, 10),
        ("or", 5, 10),
    ]
    report, undetected = coverage_of(alu, faults, thorough)
    rounds.append(("+ bit walks & carries", len(thorough), report.coverage))

    print()
    print(
        render_table(
            ("vector set", "vectors", "coverage"),
            [
                (name, count, f"{coverage:.1%}")
                for name, count, coverage in rounds
            ],
        )
    )
    print(f"remaining undetected ({len(undetected)}):")
    for fault in undetected:
        print(f"  {fault.describe()}")
    print(
        "\nEach round was chosen by reading the previous round's "
        "undetected list -- the fault simulator as a test-development "
        "assistant, as the paper describes."
    )


if __name__ == "__main__":
    main()
