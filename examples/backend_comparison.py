"""Compare the registered fault-simulation backends on one workload.

The paper is a performance comparison between fault-simulation
strategies; this example replays that comparison through the backend
registry: the same RAM, fault sample and marching sequence run under

* ``serial``      -- every faulty circuit simulated individually;
* ``concurrent``  -- the paper's algorithm (divergence records);
* ``batch``       -- bit-parallel lockstep lanes.

All three must agree on every detection (the registry's contract,
property-tested in tests/core/test_backends.py); what differs is the
cost, printed per backend.

Run:  python examples/backend_comparison.py [rows cols n_faults]
"""

import sys

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, available_backends, run_backend
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    n_faults = int(sys.argv[3]) if len(sys.argv) > 3 else 60

    ram = build_ram(rows, cols)
    sequence = sequence1(ram)
    patterns = list(sequence.patterns)
    faults = sample_faults(ram_fault_universe(ram), n_faults, seed=1985)
    print(
        f"workload: {ram.name}, {len(patterns)} patterns "
        f"({sequence.name}), {len(faults)} faults\n"
    )

    policy = SimPolicy()  # hard detections, fault dropping on
    reports = {}
    for name in available_backends():
        report = run_backend(
            name, ram.net, faults, [ram.dout], patterns, policy
        )
        reports[name] = report
        print(
            f"{name:12s} {report.total_seconds:8.3f}s CPU   "
            f"detected {report.detected}/{report.n_faults} "
            f"({report.coverage:.1%})"
        )

    # The registry contract: identical detections everywhere.
    baseline = reports["serial"]
    for name, report in reports.items():
        for circuit_id in range(1, len(faults) + 1):
            mine = report.log.first_detection(circuit_id)
            ref = baseline.log.first_detection(circuit_id)
            mine_at = (mine.pattern_index, mine.phase_index) if mine else None
            ref_at = (ref.pattern_index, ref.phase_index) if ref else None
            assert mine_at == ref_at, (name, circuit_id, mine_at, ref_at)
    print("\nall backends agree on every detection (pattern and phase)")

    serial_s = reports["serial"].total_seconds
    for name in ("concurrent", "batch"):
        ratio = serial_s / max(reports[name].total_seconds, 1e-9)
        print(f"serial / {name}: {ratio:.1f}x")


if __name__ == "__main__":
    main()
