"""Netlist-file workflow: write, validate, simulate, fault-simulate.

Shows the text-netlist side of the library: a hand-written nMOS
majority gate netlist is parsed, linted, logic-simulated, and
fault-simulated -- the same flow the ``fmossim`` command-line tool
drives.

Run:  python examples/netlist_workflow.py
"""

import io

from repro.core import ConcurrentFaultSimulator, node_stuck_universe
from repro.netlist import sim_format
from repro.netlist.validate import validate
from repro.patterns import Phase, TestPattern
from repro.switchlevel.simulator import Simulator

MAJORITY_NETLIST = """\
; nMOS 3-input majority gate: out = ab + bc + ca (NOR-NOR form)
strengths 2 3
input a b c
; first level: pairwise NORs
node nab nbc nca
d nab vdd nab 1
n a nab gnd 2
n b nab gnd 2
d nbc vdd nbc 1
n b nbc gnd 2
n c nbc gnd 2
d nca vdd nca 1
n c nca gnd 2
n a nca gnd 2
; second level: out_bar = NOR of the three pair NORs is wrong for
; majority, so use pulldown pairs directly: out_bar low iff some pair
; is high.
node out_bar x1 x2 x3
d out_bar vdd out_bar 1
n a x1 out_bar 2
n b x1 gnd 2
n b x2 out_bar 2
n c x2 gnd 2
n c x3 out_bar 2
n a x3 gnd 2
node out
d out vdd out 1
n out_bar out gnd 2
"""


def main() -> None:
    net = sim_format.loads(MAJORITY_NETLIST)
    print(f"parsed: {net.stats()}")

    print("\nlints:")
    findings = validate(net)
    if not findings:
        print("  clean")
    for lint in findings:
        print(f"  {lint}")

    sim = Simulator(net)
    print("\ntruth table (out = majority(a, b, c)):")
    for a in "01":
        for b in "01":
            for c in "01":
                sim.apply({"a": a, "b": b, "c": c})
                expected = int(int(a) + int(b) + int(c) >= 2)
                mark = "" if sim.get("out") == str(expected) else "  <-- WRONG"
                print(f"  {a}{b}{c} -> {sim.get('out')}{mark}")

    faults = node_stuck_universe(net)
    patterns = [
        TestPattern(
            f"v{value}",
            (Phase({"a": value >> 2 & 1, "b": value >> 1 & 1,
                    "c": value & 1}),),
        )
        for value in range(8)
    ]
    report = ConcurrentFaultSimulator(net, faults, ["out"]).run(patterns)
    print(
        f"\nexhaustive vectors detect {report.detected}/{report.n_faults} "
        f"node stuck faults ({report.coverage:.1%})"
    )

    # Round-trip the netlist to show the writer.
    stream = io.StringIO()
    sim_format.dump(net, stream)
    print("\ncanonical netlist (first 6 lines):")
    for line in stream.getvalue().splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
