"""Quickstart: build a circuit, simulate it, fault-simulate it.

Builds a CMOS NAND latch driven through pass transistors, runs the
switch-level logic simulator, then injects every stuck-at fault and runs
the concurrent fault simulator against a short functional test.

Run:  python examples/quickstart.py
"""

from repro import NetworkBuilder, Simulator
from repro.cells import cmos
from repro.core import (
    ConcurrentFaultSimulator,
    node_stuck_universe,
    transistor_stuck_universe,
)
from repro.patterns import Phase, TestPattern


def build_latch() -> NetworkBuilder:
    """A gated D latch: two cross-coupled CMOS NANDs plus input gating."""
    b = NetworkBuilder()
    b.input("d")
    b.input("en")
    d_bar = cmos.inverter(b, "d", "d_bar")
    set_bar = cmos.nand(b, ["d", "en"], "set_bar")
    reset_bar = cmos.nand(b, [d_bar, "en"], "reset_bar")
    b.node("q")
    b.node("q_bar")
    cmos.nand(b, ["set_bar", "q_bar"], "q")
    cmos.nand(b, ["reset_bar", "q"], "q_bar")
    return b


def functional_test() -> list[TestPattern]:
    """Latch 1, hold it, latch 0, hold it -- observing q each phase."""
    steps = [
        {"d": 1, "en": 1},
        {"en": 0},
        {"d": 0},          # q must hold 1
        {"en": 1},         # latch the 0
        {"en": 0},
        {"d": 1},          # q must hold 0
    ]
    return [
        TestPattern(f"step{i}", (Phase(s),)) for i, s in enumerate(steps)
    ]


def main() -> None:
    builder = build_latch()
    net = builder.build()
    print(f"circuit: {net.stats()}")

    # --- logic simulation ------------------------------------------------
    sim = Simulator(net)
    sim.apply({"d": 1, "en": 1})
    print(f"latched d=1: q={sim.get('q')} q_bar={sim.get('q_bar')}")
    sim.apply({"en": 0})
    sim.apply({"d": 0})
    print(f"after en=0, d=0: q={sim.get('q')} (should still be 1)")

    # --- fault simulation --------------------------------------------------
    faults = node_stuck_universe(net) + transistor_stuck_universe(net)
    simulator = ConcurrentFaultSimulator(net, faults, observed=["q"])
    report = simulator.run(functional_test())
    print(
        f"\nfault simulation: {report.detected}/{report.n_faults} faults "
        f"detected ({report.coverage:.1%}) in {report.total_seconds:.3f}s CPU"
    )
    print("first few detections:")
    for detection in report.log.detections[:5]:
        print(f"  {detection}")
    undetected = sorted(
        set(range(1, len(faults) + 1)) - report.log.detected_circuits()
    )
    print(f"undetected: {len(undetected)} faults, e.g.:")
    for cid in undetected[:3]:
        print(f"  {faults[cid - 1].describe()}")
    print(
        "\n(the undetected list is how FMOSSIM 'directs the designer to "
        "those areas of the circuit that require further tests')"
    )


if __name__ == "__main__":
    main()
