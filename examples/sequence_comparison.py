"""Figure 2's lesson: the shortest test sequence is not the fastest.

Runs the same fault list under Test Sequence 1 (with row/column marches)
and Test Sequence 2 (without them).  Sequence 2 is shorter, but the
decoder and control faults that Sequence 1 kills in its head survive
deep into the array march, so every pattern drags live, badly diverged
circuits along -- exactly the effect the paper measured (49 min for the
shorter sequence vs 21.9 min for the longer one).

Run:  python examples/sequence_comparison.py [rows cols]
"""

import sys

from repro.circuits import build_ram
from repro.core import (
    ConcurrentFaultSimulator,
    estimate_serial_seconds,
    ram_fault_universe,
)
from repro.harness import format_seconds, render_table
from repro.patterns import sequence1, sequence2


def run(ram, sequence, faults):
    good = ConcurrentFaultSimulator(ram.net, [], observed=[ram.dout])
    good_report = good.run(sequence.patterns)
    simulator = ConcurrentFaultSimulator(
        ram.net, faults, observed=[ram.dout]
    )
    report = simulator.run(sequence.patterns)
    estimate = estimate_serial_seconds(
        report, good_report.average_seconds_per_pattern()
    )
    return report, estimate


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    ram = build_ram(rows, cols)
    faults = ram_fault_universe(ram)
    print(f"{ram.name}, {len(faults)} faults\n")

    table_rows = []
    per_pattern = {}
    for sequence in (sequence1(ram), sequence2(ram)):
        report, estimate = run(ram, sequence, faults)
        per_pattern[sequence.name] = report.average_seconds_per_pattern()
        table_rows.append(
            (
                sequence.name,
                len(sequence),
                report.detected,
                format_seconds(report.total_seconds),
                format_seconds(estimate),
                f"{estimate / report.total_seconds:.1f}",
            )
        )
    print(
        render_table(
            (
                "sequence",
                "patterns",
                "detected",
                "concurrent",
                "serial est.",
                "ratio",
            ),
            table_rows,
        )
    )
    s1, s2 = per_pattern["sequence1"], per_pattern["sequence2"]
    print(
        f"average seconds/pattern: sequence1 {s1 * 1e3:.1f} ms, "
        f"sequence2 {s2 * 1e3:.1f} ms "
        f"({s2 / s1:.2f}x -- severe faults survive longer without the "
        "row/column marches)"
    )
    print(
        "\nPaper's conclusion: 'the shortest test sequence for a set of "
        "faults\nmay not give the shortest simulation time, and the "
        "penalty is worse for\nconcurrent simulation than for serial.'"
    )


if __name__ == "__main__":
    main()
