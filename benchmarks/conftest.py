"""Shared configuration for the benchmark suite.

Every benchmark runs at a reduced *CI scale* by default so the whole
suite finishes in a few minutes of pure Python; set
``REPRO_BENCH_SCALE=paper`` to run the paper's actual dimensions
(RAM64/RAM256, all faults -- budget roughly an hour of CPU).  Measured
results for both scales are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

#: (rows, cols, n_faults or None=all) per figure at each scale.
SCALES = {
    "ci": {
        "fig1": (4, 4, None),
        "fig2": (4, 4, None),
        # (rows, cols, n_faults) for the cross-backend comparison; the
        # serial baseline runs the same sample, so keep it modest at CI
        # scale (serial cost is faults x patterns x circuit).
        "backends": (4, 4, 48),
        "scaling_small": (2, 2, None),
        "scaling_large": (4, 4, None),
        "fig3_circuit": (4, 4),
        "fig3_counts": (25, 75, 125, 200),
        # Shape-assertion margins.  The paper's effects (tail advantage,
        # serial blow-up) strengthen with circuit size; at CI scale they
        # are present but small, so the thresholds are conservative.
        "fig3_min_slope_ratio": 1.2,
        "scaling_serial_margin": 1.15,
        # (rows, cols, n_faults) for the sharded-backend scaling sweep,
        # the jobs counts swept, the wall-clock speedup required of the
        # largest jobs count (asserted only when that many CPUs are
        # actually available -- see test_shard_scaling.py), the tax
        # sharded jobs=1 may add over the bare inner backend, and the
        # max per-worker busy-time imbalance at the largest jobs count.
        "shard": (4, 4, 32),
        "shard_jobs": (1, 2, 4),
        "shard_min_speedup": 1.5,
        "shard_max_jobs1_overhead": 1.15,
        "shard_max_imbalance": 1.5,
        # Compiled-locality comparison (test_compiled_locality.py):
        # the solve cache must hit more often than it misses, and
        # compiled must not lose to dynamic on any backend (the margin
        # absorbs shared-runner noise around the measured speedups:
        # serial ~2x, concurrent ~1.5x, batch ~1.1x).
        "compiled_min_hit_rate": 0.5,
        "compiled_max_ratio": 1.05,
        # Service benchmark (test_service_warm.py): the fig1 RAM16 job
        # submitted twice to a fresh server -- the second (warm) job
        # must beat the cold one end-to-end by this factor, plus a
        # throughput probe with this many concurrent clients.
        "service": (4, 4, 48),
        "service_min_warm_speedup": 1.3,
        "service_clients": 4,
        # Collapse + trim benchmark (test_collapse_trim.py): (rows,
        # cols, serial sample size, concurrent sample size) over the
        # combined node-stuck + transistor-stuck universe, and the
        # end-to-end speedup each backend must show against its own
        # collapse=False, trim=False baseline.
        "collapse": (4, 4, 60, 150),
        "collapse_min_speedup": 1.3,
        # Static-prune benchmark (test_static_prune.py): (rows, cols,
        # serial sample of the combined universe, batch sample of the
        # transistor-stuck universe or None=full) with the dynamic
        # redundancy eliminators off on both legs (collapse and the
        # serial trim would null the same d-type faults), and the
        # end-to-end speedup each backend must show against its own
        # static_prune=False baseline.  The prune removes work
        # proportional to the pruned fraction (serial) or to dropped
        # lane planes (batch), so the floor is modest.
        "static": (4, 4, 60, None),
        "static_min_speedup": 1.02,
    },
    "paper": {
        "fig1": (8, 8, 428),
        "fig2": (8, 8, 428),
        "backends": (8, 8, 428),
        "scaling_small": (8, 8, 428),
        "scaling_large": (16, 16, None),
        "fig3_circuit": (16, 16),
        "fig3_counts": (100, 400, 800, 1382),
        "fig3_min_slope_ratio": 3.0,
        "scaling_serial_margin": 1.8,
        "shard": (8, 8, 428),
        "shard_jobs": (1, 2, 4),
        "shard_min_speedup": 1.5,
        "shard_max_jobs1_overhead": 1.15,
        "shard_max_imbalance": 1.5,
        "compiled_min_hit_rate": 0.5,
        "compiled_max_ratio": 1.05,
        "service": (8, 8, 428),
        "service_min_warm_speedup": 1.3,
        "service_clients": 4,
        "collapse": (4, 4, 120, None),
        "collapse_min_speedup": 1.3,
        "static": (8, 8, 120, None),
        "static_min_speedup": 1.02,
    },
}


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    name = os.environ.get("REPRO_BENCH_SCALE", "ci")
    if name not in SCALES:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE={name!r}; expected one of {sorted(SCALES)}"
        )
    return SCALES[name]
