"""FIG1: fault simulation of the RAM under Test Sequence 1.

Paper (RAM64, 428 faults, 407 patterns): concurrent 21.9 min vs good
circuit alone 2.7 min vs estimated serial 404 min -- a concurrent/serial
ratio of 18, with 71% of the time in the first 87 patterns (the "head")
and a cheap "tail" running only ~3x slower than the good circuit.

Shape criteria checked here (absolute times are machine-dependent):

* the concurrent run beats the serial estimate;
* the per-pattern cost *falls* from head to tail (severe faults are
  detected early and dropped);
* most faults are detected, and dropping empties the live set.
"""

from __future__ import annotations

import statistics

from repro.harness.experiments import run_fig1


def test_fig1_sequence1_shape(benchmark, bench_scale):
    rows, cols, n_faults = bench_scale["fig1"]

    result = benchmark.pedantic(
        lambda: run_fig1(rows, cols, n_faults=n_faults),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    # Concurrent simulation wins against serial.
    assert result.concurrent_seconds < result.serial_estimate_seconds

    # Falling seconds-per-pattern curve: the head average must exceed
    # the tail average by a clear margin.
    head = result.seconds_per_pattern[: result.head_patterns]
    tail = result.seconds_per_pattern[result.head_patterns:]
    assert statistics.mean(head) > 1.5 * statistics.mean(tail)

    # The very first patterns (uninitialized circuit, severe faults
    # alive) are the most expensive part of the run.
    first = statistics.mean(result.seconds_per_pattern[:5])
    last = statistics.mean(result.seconds_per_pattern[-20:])
    assert first > 2 * last

    # Detection: high coverage, monotone cumulative curve.
    assert result.coverage > 0.75
    curve = result.cumulative_detections
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert result.live_after_pattern[-1] == result.n_faults - result.detected
