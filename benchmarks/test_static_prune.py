"""Static-prune speedup benchmark -> BENCH_static.json.

Runs the Figure-1 RAM16 workload twice per backend: once with the
static testability analysis pruning provably-untestable faults up
front (``static_prune=True``) and once without.  The other redundancy
eliminators are disabled on *both* legs so the measurement isolates the
pruner -- collapsing's null-class rule and the serial warm-start trim
both exploit the same behavioral equivalence dynamically, and would
otherwise hide what the static stage saves (``test_collapse_trim.py``
measures them).  Archived next to the repo root as ``BENCH_static.json``.

The backends measured are the ones whose cost is fault-proportional,
each on the universe where the prune's saving is structural:

* ``serial`` simulates every faulty circuit through every pattern, so
  each pruned fault saves a full simulation; it runs a sample of the
  combined node-stuck + transistor-stuck universe.
* ``batch`` dedicates a 64-bit lane to every fault for the whole run,
  so the saving only materializes when pruning crosses a lane-plane
  boundary; it runs the transistor-stuck universe, where the RAM's
  always-on depletion loads make the pruned set large enough to drop a
  whole plane (362 faults -> 6 planes, 315 kept -> 5 on RAM16).

(The concurrent backend's cost scales with *diverged state*, which is
~zero for unexcitable faults, so pruning buys it bookkeeping only.)

Checks:

* detections are bit-identical with and without pruning (the analysis
  is conservative: it only ever removes faults the simulator could
  never detect);
* the prune actually engages on this workload (the RAM's depletion
  loads guarantee a nonempty unexcitable set);
* each backend beats its own unpruned baseline end-to-end by the
  configured factor (``static_min_speedup``).

Timing uses the process clock with legs interleaved and min-of-repeats
per leg, so the speedup assertion measures algorithmic work, not
shared-runner noise.
"""

from __future__ import annotations

import json
import os

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import (
    ram_fault_universe,
    sample_faults,
    transistor_stuck_universe,
)
from repro.patterns.sequences import sequence1

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_static.json",
)

_REPEATS = 3


def _first_detections(report):
    return {
        circuit_id: (
            (hit.pattern_index, hit.phase_index)
            if (hit := report.log.first_detection(circuit_id)) is not None
            else None
        )
        for circuit_id in range(1, report.n_faults + 1)
    }


def _interleaved_legs(backend, net, faults, observed, patterns, options):
    """Run (baseline, pruned) legs interleaved; min-of-repeats each."""
    policy = SimPolicy()  # process clock: measure work, not the machine
    best = {False: None, True: None}
    for _ in range(_REPEATS):
        for pruned in (False, True):
            report = run_backend(
                backend, net, faults, observed, patterns, policy,
                static_prune=pruned, **options,
            )
            if (
                best[pruned] is None
                or report.total_seconds < best[pruned].total_seconds
            ):
                best[pruned] = report
    return best[False], best[True]


def test_static_prune_speedup(bench_scale):
    rows, cols, n_serial, n_batch = bench_scale["static"]
    min_speedup = bench_scale["static_min_speedup"]
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    transistor = transistor_stuck_universe(ram.net)
    universe = ram_fault_universe(ram) + transistor

    def pick(pool, count):
        if count is None or count >= len(pool):
            return pool
        return sample_faults(pool, count, seed=1985)

    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "universe_faults": len(universe),
        "transistor_universe_faults": len(transistor),
        "clock": "process",
        "repeats": _REPEATS,
        "min_speedup": min_speedup,
        "backends": {},
    }
    legs = (
        # serial: warm-start trim off on both legs (it dynamically
        # eliminates the very faults the static stage prunes).
        ("serial", "combined", pick(universe, n_serial),
         {"collapse": False, "trim": False}),
        # batch: one lane per fault for the whole run (no trim layer).
        # Transistor-stuck only: that is where pruning crosses a
        # lane-plane boundary instead of just thinning live lanes.
        ("batch", "transistor_stuck", pick(transistor, n_batch),
         {"collapse": False}),
    )
    for backend, universe_name, faults, options in legs:
        baseline, optimized = _interleaved_legs(
            backend, ram.net, faults, [ram.dout], patterns, options
        )

        # Conservative pruning must not change the answer.
        assert _first_detections(optimized) == _first_detections(baseline)

        stats = optimized.static_pruned
        assert stats is not None, backend
        assert stats["pruned"] > 0
        assert stats["kept"] + stats["pruned"] == stats["faults"]
        assert stats["faults"] == len(faults)
        assert baseline.static_pruned is None
        # The report still covers the whole universe.
        assert optimized.n_faults == len(faults)

        speedup = baseline.total_seconds / max(
            optimized.total_seconds, 1e-9
        )
        payload["backends"][backend] = {
            "universe": universe_name,
            "n_faults": len(faults),
            "pruned": stats["pruned"],
            "unexcitable": stats["unexcitable"],
            "unobservable": stats["unobservable"],
            "optimized_seconds": round(optimized.total_seconds, 6),
            "baseline_seconds": round(baseline.total_seconds, 6),
            "seconds_saved": round(
                baseline.total_seconds - optimized.total_seconds, 6
            ),
            "speedup": round(speedup, 3),
            "detected": optimized.detected,
        }
        assert speedup >= min_speedup, (backend, speedup, min_speedup)

    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["backends"], indent=2))
