"""Compiled vs dynamic locality, Figure-1 -> BENCH_compiled.json.

Runs the RAM16 / Test Sequence 1 / sampled-fault workload (the same
workload as ``test_backend_comparison.py``) through the serial,
concurrent and batch backends under both the dynamic locality (the
paper's algorithm, the PR-4 baseline) and the compiled locality
(compile-once channel-connected partition + memoized region solve
cache), and archives the comparison next to the repo root as
``BENCH_compiled.json``.

Each run gets a freshly built RAM so no run warms another's cache,
and each (backend, locality) pair is timed ``REPEATS`` times with the
*minimum* wall kept -- the standard noise-robust estimator; shared
runners routinely inflate a single run by 20%+.

Checks (absolute times are machine-dependent):

* detection counts and first-detection points are identical across
  every (backend, locality) pair -- localities change *where work
  happens*, never the results;
* the solve cache hits more often than it misses for the serial and
  concurrent backends;
* the compiled locality does not lose to dynamic on **any** backend
  (measured speedups on the dev box: serial ~2x, concurrent ~1.5x,
  batch ~1.1x; the margin in ``conftest.SCALES`` absorbs runner
  noise).  Batch is the tightest: its lane-parallel rounds already
  amortize most of what the cache saves, so its win comes from the
  mask-filtered lane regions and the compaction-surviving solve memo
  rather than raw cache hits.
"""

from __future__ import annotations

import json
import os
import time

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1
from repro.switchlevel.compiled import compile_network

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_compiled.json",
)

BACKENDS = ("serial", "concurrent", "batch")
LOCALITIES = ("dynamic", "compiled")
REPEATS = 3


def _workload(rows, cols, n_faults):
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    universe = ram_fault_universe(ram)
    if n_faults is None or n_faults >= len(universe):
        faults = universe
    else:
        faults = sample_faults(universe, n_faults, seed=1985)
    return ram, patterns, faults


def test_compiled_vs_dynamic(bench_scale):
    rows, cols, n_faults = bench_scale["backends"]
    policy = SimPolicy(clock="perf")

    runs = {}
    detections = {}
    for backend in BACKENDS:
        for locality in LOCALITIES:
            wall = None
            for _ in range(REPEATS):
                # A fresh RAM per run: the compiled form (and its
                # caches) memoizes per network instance, so reuse
                # would let one run warm another's cache.
                ram, patterns, faults = _workload(rows, cols, n_faults)
                start = time.perf_counter()
                report = run_backend(
                    backend, ram.net, faults, [ram.dout], patterns,
                    policy, locality=locality,
                )
                elapsed = time.perf_counter() - start
                if wall is None or elapsed < wall:
                    wall = elapsed
            runs[(backend, locality)] = (wall, report)
            detections[(backend, locality)] = {
                cid: (
                    (hit.pattern_index, hit.phase_index)
                    if (hit := report.log.first_detection(cid))
                    else None
                )
                for cid in range(1, len(faults) + 1)
            }

    # Parity: identical detections across every backend and locality.
    baseline = detections[("serial", "dynamic")]
    for key, mapping in detections.items():
        assert mapping == baseline, key

    # The cache must actually carry the compiled runs.
    min_hit_rate = bench_scale["compiled_min_hit_rate"]
    for backend in ("serial", "concurrent"):
        cache = runs[(backend, "compiled")][1].solve_cache
        assert cache is not None, backend
        assert cache["hit_rate"] > min_hit_rate, (backend, cache)

    # Compiled must not lose to dynamic on any backend.
    max_ratio = bench_scale["compiled_max_ratio"]
    for backend in BACKENDS:
        dynamic_wall = runs[(backend, "dynamic")][0]
        compiled_wall = runs[(backend, "compiled")][0]
        assert compiled_wall < dynamic_wall * max_ratio, (
            backend, compiled_wall, dynamic_wall
        )

    ram, _patterns, faults = _workload(rows, cols, n_faults)
    histogram = compile_network(ram.net).component_size_histogram()
    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(_patterns),
        "n_faults": len(faults),
        "detection_policy": policy.detection_policy,
        "clock": "perf",
        "component_size_histogram": {
            str(size): count for size, count in sorted(histogram.items())
        },
        "backends": {},
    }
    for backend in BACKENDS:
        dynamic_wall, _ = runs[(backend, "dynamic")]
        compiled_wall, compiled_report = runs[(backend, "compiled")]
        cache = compiled_report.solve_cache or {}
        payload["backends"][backend] = {
            "dynamic_wall_seconds": round(dynamic_wall, 6),
            "compiled_wall_seconds": round(compiled_wall, 6),
            "compiled_speedup": round(dynamic_wall / compiled_wall, 3),
            "detected": compiled_report.detected,
            "solve_cache_hit_rate": round(cache.get("hit_rate", 0.0), 4),
            "solve_cache_hits": cache.get("hits", 0),
            "solve_cache_misses": cache.get("misses", 0),
        }
    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["backends"], indent=2))
