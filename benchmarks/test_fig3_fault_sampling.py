"""FIG3: average seconds/pattern vs number of randomly sampled faults.

Paper (RAM256): both concurrent and serial grow linearly in the sample
size, serial about 85x steeper -- linear concurrent growth means the
state-list machinery adds no superlinear overhead, while the gap is the
concurrent win itself.

Shape criteria: both series increase monotonically, the concurrent
series is close to linear (good fit), and the serial slope is a large
multiple of the concurrent slope.
"""

from __future__ import annotations

from repro.harness.experiments import run_fig3


def _linear_fit_r2(xs, ys):
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return 0.0, 0.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys) or 1e-12
    return slope, 1.0 - ss_res / ss_tot


def test_fig3_linear_in_fault_count(benchmark, bench_scale):
    rows, cols = bench_scale["fig3_circuit"]
    counts = bench_scale["fig3_counts"]

    result = benchmark.pedantic(
        lambda: run_fig3(rows, cols, fault_counts=counts),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    xs = [p.n_faults for p in result.points]
    concurrent = [p.concurrent_avg for p in result.points]
    serial = [p.serial_estimate_avg for p in result.points]

    # Monotone growth in the sample size.
    assert all(b > a for a, b in zip(concurrent, concurrent[1:]))
    assert all(b > a for a, b in zip(serial, serial[1:]))

    # Near-linear concurrent growth (the paper's "no penalty for the
    # state-list overhead" observation).
    slope_c, r2_c = _linear_fit_r2(xs, concurrent)
    slope_s, r2_s = _linear_fit_r2(xs, serial)
    assert slope_c > 0
    assert r2_c > 0.9
    assert r2_s > 0.9

    # Serial is steeper (paper: ~85x on RAM256; smaller circuits and
    # short sequences shrink the gap, so the margin is scale-dependent).
    assert slope_s > bench_scale["fig3_min_slope_ratio"] * slope_c
    print(
        f"slopes: concurrent {slope_c * 1e6:.2f} us/pattern/fault, "
        f"serial {slope_s * 1e6:.2f} us/pattern/fault "
        f"(ratio {slope_s / slope_c:.1f})"
    )
