"""FIG2: the same faults under Test Sequence 2 (row/col marches omitted).

Paper: the shorter sequence took *longer* (49 min vs 21.9 min) and the
concurrent/serial ratio dropped from 18 to 9, because the severe
decoder/control faults stay alive deep into the array march.

Shape criteria: per-pattern cost under Sequence 2 exceeds Sequence 1's
(severe faults survive longer), and its per-pattern curve decays more
slowly (a weaker head effect).

This experiment runs under the *hard* detection policy: Figure 2's whole
premise is that severe faults survive when the row/column marches are
omitted, and that requires not dropping them on the X-vs-definite output
differences they produce almost immediately on our RAM (see the policy
discussion in EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics

from repro.harness.experiments import run_fig1, run_fig2


def test_fig2_sequence2_shape(benchmark, bench_scale):
    rows, cols, n_faults = bench_scale["fig2"]

    result2 = benchmark.pedantic(
        lambda: run_fig2(
            rows, cols, n_faults=n_faults, detection_policy="hard"
        ),
        rounds=1,
        iterations=1,
    )
    result1 = run_fig1(rows, cols, n_faults=n_faults, detection_policy="hard")
    print()
    print(result2.render())

    # Sequence 2 is shorter...
    assert result2.n_patterns < result1.n_patterns
    # ...but costs more per pattern: severe faults stay alive longer.
    avg1 = result1.concurrent_seconds / result1.n_patterns
    avg2 = result2.concurrent_seconds / result2.n_patterns
    assert avg2 > avg1

    # And its concurrent/serial advantage is smaller than Sequence 1's.
    assert (
        result2.concurrent_vs_serial_ratio
        < result1.concurrent_vs_serial_ratio
    )

    # Both sequences eventually reach comparable coverage.
    assert result2.detected >= 0.9 * result1.detected

    # Weaker head effect: the early-pattern cost advantage over the tail
    # is smaller for sequence 2 than for sequence 1.
    def head_tail_contrast(result):
        head = statistics.mean(result.seconds_per_pattern[:7])
        tail = statistics.mean(result.seconds_per_pattern[-20:])
        return head / tail

    assert head_tail_contrast(result2) < head_tail_contrast(result1)
