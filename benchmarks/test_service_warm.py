"""Cold vs warm job latency through the service -> BENCH_service.json.

Submits the Figure-1 workload (RAM16, Test Sequence 1, the seed-1985
fault sample -- all node-stuck faults, so the compiled form and solve
cache carry between jobs) to an in-process fault-sim server twice per
repeat: the first job lands on an empty worker and pays parse +
compile + cache warm-up, the second hits the worker's circuit cache
and starts hot.  Each repeat uses a *fresh* server so its cold job is
genuinely cold; minima over ``REPEATS`` are kept, as everywhere else
in this suite.

Checks (absolute times are machine-dependent):

* the warm job's streamed detections are identical to a local serial
  backend run of the same workload -- the service changes *where* the
  simulation happens, never the results;
* the warm job reports ``compile_seconds == 0`` and a miss-free solve
  cache;
* warm beats cold end-to-end by ``service_min_warm_speedup`` (the
  measured margin on the dev box is ~3x; the threshold absorbs
  runner noise).

A second section measures throughput under ``service_clients``
concurrent clients hammering the same circuit; on a single-CPU runner
this mostly exercises queueing, so it is recorded, not asserted.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1
from repro.service.client import ServiceClient, job_from_network
from repro.service.server import FaultSimServer

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)

REPEATS = 3


class _Harness:
    """A FaultSimServer on a background thread's event loop."""

    def __init__(self, workers=1):
        self.server = FaultSimServer(port=0, workers=workers)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(timeout=60), "server failed to start"

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.server.start()
            self._ready.set()
            await self.server._stopped.wait()

        self.loop.run_until_complete(main())

    def client(self) -> ServiceClient:
        host, port = self.server.address
        return ServiceClient(host=host, port=port)

    def stop(self):
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        )
        future.result(timeout=60)
        self.thread.join(timeout=10)
        self.loop.close()


def _workload(rows, cols, n_faults):
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    universe = ram_fault_universe(ram)
    if n_faults is None or n_faults >= len(universe):
        faults = universe
    else:
        faults = sample_faults(universe, n_faults, seed=1985)
    return ram, patterns, faults


def _detection_map(report, n_faults):
    return {
        cid: (
            (hit.pattern_index, hit.phase_index)
            if (hit := report.log.first_detection(cid))
            else None
        )
        for cid in range(1, n_faults + 1)
    }


def test_service_warm_vs_cold(bench_scale):
    rows, cols, n_faults = bench_scale["service"]
    policy = SimPolicy(clock="perf")
    ram, patterns, faults = _workload(rows, cols, n_faults)
    job = job_from_network(ram.net, [ram.dout], faults, patterns,
                           policy=policy)

    cold_wall = warm_wall = None
    cold_result = warm_result = None
    for _ in range(REPEATS):
        harness = _Harness(workers=1)
        try:
            client = harness.client()
            start = time.perf_counter()
            cold = client.run(job)
            cold_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            warm = client.run(job)
            warm_elapsed = time.perf_counter() - start
        finally:
            harness.stop()
        assert cold.warm is False
        assert warm.warm is True
        if cold_wall is None or cold_elapsed < cold_wall:
            cold_wall, cold_result = cold_elapsed, cold
        if warm_wall is None or warm_elapsed < warm_wall:
            warm_wall, warm_result = warm_elapsed, warm

    # The warm contract: no parse, no compile, miss-free solve cache.
    assert warm_result.timings["compile_seconds"] == 0.0
    assert cold_result.timings["compile_seconds"] > 0.0
    warm_cache = warm_result.report.solve_cache
    assert warm_cache is not None and warm_cache["misses"] == 0

    # Parity with the serial reference backend: identical detections.
    serial = run_backend(
        "serial", ram.net, faults, [ram.dout], patterns, policy
    )
    baseline = _detection_map(serial, len(faults))
    assert _detection_map(cold_result.report, len(faults)) == baseline
    assert _detection_map(warm_result.report, len(faults)) == baseline

    # The headline number: warm must beat cold end-to-end.
    min_speedup = bench_scale["service_min_warm_speedup"]
    speedup = cold_wall / warm_wall
    assert speedup >= min_speedup, (cold_wall, warm_wall, speedup)

    # Throughput under concurrent clients (recorded, not asserted:
    # on a single-CPU runner this measures queueing, not parallelism).
    n_clients = bench_scale["service_clients"]
    harness = _Harness(workers=min(2, os.cpu_count() or 1))
    try:
        failures = []

        def hammer():
            try:
                harness.client().run(job)
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(exc)

        harness.client().run(job)  # warm the pool first
        threads = [
            threading.Thread(target=hammer) for _ in range(n_clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        concurrent_wall = time.perf_counter() - start
        assert not failures
    finally:
        harness.stop()

    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "n_faults": len(faults),
        "detection_policy": policy.detection_policy,
        "clock": "perf",
        "detected": warm_result.report.detected,
        "cold_wall_seconds": round(cold_wall, 6),
        "warm_wall_seconds": round(warm_wall, 6),
        "warm_speedup": round(speedup, 3),
        "cold_timings": {
            key: round(value, 6)
            for key, value in sorted(cold_result.timings.items())
        },
        "warm_timings": {
            key: round(value, 6)
            for key, value in sorted(warm_result.timings.items())
        },
        "warm_solve_cache": {
            "hits": warm_cache["hits"],
            "misses": warm_cache["misses"],
            "hit_rate": round(warm_cache["hit_rate"], 4),
        },
        "concurrent_clients": {
            "clients": n_clients,
            "jobs": n_clients,
            "wall_seconds": round(concurrent_wall, 6),
            "jobs_per_second": round(n_clients / concurrent_wall, 3),
        },
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload, indent=2))
