"""Sharded-backend scaling sweep -> BENCH_shard.json.

Runs the Figure-1 workload through ``sharded(serial)`` at jobs in
{1, 2, 4} and archives per-jobs wall-clock next to the repo root as
``BENCH_shard.json``, so the parallel-scaling trajectory is tracked
across changes alongside ``BENCH_backends.json``.

At the default CI scale the workload is a reduced Figure-1 setup;
``REPRO_BENCH_SCALE=paper`` runs the paper's RAM64 dimensions (428
faults, 407 patterns -- budget tens of minutes per jobs count for the
serial inner backend).

Checks:

* sharding is exact: every jobs count produces detections identical to
  the unsharded inner run (fault, pattern, phase);
* the merged report is well-formed: per-shard wall times recorded, live
  counts sum to the global count, backend tag names inner x shards;
* wall-clock speedup at the largest jobs count beats
  ``shard_min_speedup`` -- asserted only when that many CPUs are
  actually available (the sweep is pure CPU-bound Python, so on a
  single-core runner jobs=4 physically cannot beat jobs=1; the JSON
  records ``cpus`` so archived numbers stay interpretable).
"""

from __future__ import annotations

import json
import os
import time

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_shard.json",
)

INNER = "serial"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _first_detections(report, n_faults):
    result = {}
    for circuit_id in range(1, n_faults + 1):
        detection = report.log.first_detection(circuit_id)
        result[circuit_id] = (
            (detection.pattern_index, detection.phase_index)
            if detection
            else None
        )
    return result


def test_shard_scaling(bench_scale):
    rows, cols, n_faults = bench_scale["shard"]
    jobs_sweep = bench_scale["shard_jobs"]
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    universe = ram_fault_universe(ram)
    if n_faults is None or n_faults >= len(universe):
        faults = universe
    else:
        faults = sample_faults(universe, n_faults, seed=1985)

    policy = SimPolicy(clock="perf")
    runs = {}
    for jobs in jobs_sweep:
        start = time.perf_counter()
        report = run_backend(
            "sharded", ram.net, faults, [ram.dout], patterns, policy,
            jobs=jobs, inner_backend=INNER,
        )
        wall = time.perf_counter() - start
        shards = min(jobs, len(faults))
        assert report.backend == f"sharded({INNER}x{shards})"
        assert len(report.shard_seconds) == shards
        live = [p.live_after for p in report.patterns]
        assert live[-1] == report.n_faults - report.detected
        runs[jobs] = {"report": report, "wall": wall}

    # Sharding is exact: identical detections at every jobs count.
    baseline = _first_detections(runs[jobs_sweep[0]]["report"], len(faults))
    for jobs in jobs_sweep[1:]:
        assert (
            _first_detections(runs[jobs]["report"], len(faults)) == baseline
        ), f"jobs={jobs} diverged from jobs={jobs_sweep[0]}"

    cpus = _available_cpus()
    base_wall = runs[jobs_sweep[0]]["wall"]
    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "n_faults": len(faults),
        "inner_backend": INNER,
        "cpus": cpus,
        "runs": {
            str(jobs): {
                "wall_seconds": round(run["wall"], 6),
                "speedup_vs_jobs1": round(
                    base_wall / max(run["wall"], 1e-9), 3
                ),
                "shard_wall_seconds": [
                    round(s, 6) for s in run["report"].shard_seconds
                ],
                "detected": run["report"].detected,
            }
            for jobs, run in runs.items()
        },
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["runs"], indent=2))

    # Parallel speedup needs the parallelism to exist: assert only when
    # the sweep's largest jobs count has that many CPUs to run on.
    top = max(jobs_sweep)
    if cpus >= top:
        assert payload["runs"][str(top)]["speedup_vs_jobs1"] > (
            bench_scale["shard_min_speedup"]
        ), payload["runs"]
