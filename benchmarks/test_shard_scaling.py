"""Sharded-backend scaling sweep -> BENCH_shard.json.

Runs the Figure-1 workload through the plain inner backend once (the
baseline) and then through ``sharded(serial)`` at jobs in {1, 2, 4},
archiving per-jobs wall-clock next to the repo root as
``BENCH_shard.json``, so the parallel-scaling trajectory is tracked
across changes alongside ``BENCH_backends.json``.

At the default CI scale the workload is a reduced Figure-1 setup;
``REPRO_BENCH_SCALE=paper`` runs the paper's RAM64 dimensions (428
faults, 407 patterns -- budget tens of minutes per jobs count for the
serial inner backend).

Checks:

* sharding is exact: every jobs count produces detections identical to
  the unsharded inner run (fault, pattern, phase);
* the good circuit is settled exactly once per run (the
  ``good_settles`` counter), whether natively (jobs=1) or via the
  shipped :class:`~repro.core.goodtrace.GoodTrace` (jobs>1);
* the merged report is well-formed: per-block wall times recorded,
  live counts sum to the global count, backend tag names inner x
  shards, ``shard_stats`` carries block fault counts and the
  imbalance ratio;
* sharding at jobs=1 costs at most ``shard_max_jobs1_overhead`` of
  the inner backend run, and the per-worker busy-time imbalance at
  the largest jobs count stays under ``shard_max_imbalance``;
* wall-clock speedup beats 1x at every armed jobs count and
  ``shard_min_speedup`` at the largest -- asserted only for jobs
  counts with that many CPUs actually available (the sweep is pure
  CPU-bound Python, so on a single-core runner jobs=4 physically
  cannot beat jobs=1; the JSON records ``cpus`` so archived numbers
  stay interpretable).
"""

from __future__ import annotations

import json
import os
import time

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_shard.json",
)

INNER = "serial"


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _first_detections(report, n_faults):
    result = {}
    for circuit_id in range(1, n_faults + 1):
        detection = report.log.first_detection(circuit_id)
        result[circuit_id] = (
            (detection.pattern_index, detection.phase_index)
            if detection
            else None
        )
    return result


def test_shard_scaling(bench_scale):
    rows, cols, n_faults = bench_scale["shard"]
    jobs_sweep = bench_scale["shard_jobs"]
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    universe = ram_fault_universe(ram)
    if n_faults is None or n_faults >= len(universe):
        faults = universe
    else:
        faults = sample_faults(universe, n_faults, seed=1985)

    policy = SimPolicy(clock="perf")

    def timed(backend, **options):
        start = time.perf_counter()
        report = run_backend(
            backend, ram.net, faults, [ram.dout], patterns, policy,
            **options,
        )
        return report, time.perf_counter() - start

    # The unsharded inner backend: the exactness and overhead baseline.
    # Both sides of the jobs=1 overhead ratio take the best of two
    # walls -- single measurements of near-identical CPU-bound runs are
    # too noisy on shared runners to gate a 15% margin on.
    inner_report, inner_wall = timed(INNER)
    inner_wall = min(inner_wall, timed(INNER)[1])
    baseline = _first_detections(inner_report, len(faults))

    runs = {}
    for jobs in jobs_sweep:
        report, wall = timed("sharded", jobs=jobs, inner_backend=INNER)
        if jobs == jobs_sweep[0]:
            wall = min(
                wall, timed("sharded", jobs=jobs, inner_backend=INNER)[1]
            )
        assert report.backend == f"sharded({INNER}x{jobs})"
        stats = report.shard_stats
        assert stats is not None and stats["jobs"] == jobs
        assert len(report.shard_seconds) == stats["blocks"]
        assert sum(stats["block_faults"]) <= len(faults)
        # The headline claim: one good-circuit settle per run, shipped
        # to the shards as a GoodTrace whenever there is more than one.
        assert report.good_settles == 1
        assert stats["trace_shipped"] == (stats["blocks"] > 1)
        live = [p.live_after for p in report.patterns]
        assert live[-1] == report.n_faults - report.detected
        # Sharding is exact: identical detections to the inner run.
        assert (
            _first_detections(report, len(faults)) == baseline
        ), f"jobs={jobs} diverged from the unsharded {INNER} run"
        runs[jobs] = {"report": report, "wall": wall}

    cpus = _available_cpus()
    base_wall = runs[jobs_sweep[0]]["wall"]
    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "n_faults": len(faults),
        "inner_backend": INNER,
        "inner_wall_seconds": round(inner_wall, 6),
        "jobs1_overhead": round(
            runs[jobs_sweep[0]]["wall"] / max(inner_wall, 1e-9), 3
        ),
        "cpus": cpus,
        "runs": {
            str(jobs): {
                "wall_seconds": round(run["wall"], 6),
                "speedup_vs_jobs1": round(
                    base_wall / max(run["wall"], 1e-9), 3
                ),
                "shard_wall_seconds": [
                    round(s, 6) for s in run["report"].shard_seconds
                ],
                "detected": run["report"].detected,
                "good_settles": run["report"].good_settles,
                "blocks": run["report"].shard_stats["blocks"],
                "block_faults": run["report"].shard_stats["block_faults"],
                "imbalance_ratio": round(
                    run["report"].shard_stats["imbalance_ratio"], 3
                ),
                "trace_shipped": run["report"].shard_stats["trace_shipped"],
            }
            for jobs, run in runs.items()
        },
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["runs"], indent=2))

    # Sharding must not tax the degenerate case: jobs=1 runs the inner
    # backend inline plus scheduling bookkeeping, nothing more.
    if jobs_sweep[0] == 1:
        assert payload["jobs1_overhead"] <= (
            bench_scale["shard_max_jobs1_overhead"]
        ), payload

    # Parallel speedup needs the parallelism to exist: assert for every
    # jobs count with that many CPUs to run on -- any armed count must
    # beat 1x, the largest must clear the configured floor.
    top = max(jobs_sweep)
    for jobs in jobs_sweep:
        if jobs == jobs_sweep[0] or cpus < jobs:
            continue
        floor = bench_scale["shard_min_speedup"] if jobs == top else 1.0
        assert payload["runs"][str(jobs)]["speedup_vs_jobs1"] > floor, (
            payload["runs"]
        )
    if cpus >= top:
        assert payload["runs"][str(top)]["imbalance_ratio"] <= (
            bench_scale["shard_max_imbalance"]
        ), payload["runs"]
