"""Ablation: dynamic vicinities vs static DC-connected partitions.

Paper section 4: "earlier switch-level simulators exploited only the
static locality ... where the network was partitioned only according to
its DC-connected components."  FMOSSIM's dynamic vicinities treat an off
transistor as a boundary, so recomputation regions shrink as the circuit
switches.

This ablation runs the *good-circuit* simulation of the RAM both ways;
dynamic locality must touch fewer nodes and run faster.  (On the RAM the
static partition lumps each bit line with every cell it serves, so the
gap grows with the array.)
"""

from __future__ import annotations

import time

from repro.circuits.ram import build_ram
from repro.patterns.sequences import sequence1
from repro.switchlevel.simulator import Simulator


def run_good(ram, patterns, locality):
    simulator = Simulator(ram.net, locality=locality)
    nodes_computed = 0
    started = time.process_time()
    for pattern in patterns:
        for phase in pattern.phases:
            stats = simulator.apply(phase.settings)
            nodes_computed += stats.nodes_computed
    return time.process_time() - started, nodes_computed


def test_dynamic_beats_static_locality(benchmark, bench_scale):
    rows, cols, _ = bench_scale["fig1"]
    ram = build_ram(rows, cols)
    patterns = sequence1(ram).patterns

    static_seconds, static_nodes = run_good(ram, patterns, "static")

    def dynamic_run():
        return run_good(ram, patterns, "dynamic")

    dynamic_seconds, dynamic_nodes = benchmark.pedantic(
        dynamic_run, rounds=1, iterations=1
    )
    print()
    print(
        f"dynamic: {dynamic_seconds:.2f}s, {dynamic_nodes} node solves; "
        f"static: {static_seconds:.2f}s, {static_nodes} node solves "
        f"({static_nodes / dynamic_nodes:.1f}x more work)"
    )
    assert dynamic_nodes < static_nodes
    assert dynamic_seconds < static_seconds
