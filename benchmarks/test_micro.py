"""Microbenchmarks of the simulation kernel.

These use pytest-benchmark's statistical timing (many rounds) on the
hot primitives: steady-state solving of a bit-line vicinity, vicinity
exploration, one good-circuit RAM pattern, and state-list operations.
They are regression canaries for the kernel rather than paper figures.
"""

from __future__ import annotations

from repro.circuits.ram import build_ram
from repro.core.statelist import StateList
from repro.patterns.clocking import READ, RamOp, expand_op
from repro.switchlevel.simulator import Simulator
from repro.switchlevel.steady_state import solve_vicinity
from repro.switchlevel.vicinity import explore


def prepared_ram_sim():
    ram = build_ram(4, 4)
    sim = Simulator(ram.net)
    # Park the RAM in a realistic state: one full write/read of cell 0,0.
    from repro.patterns.clocking import WRITE

    for op in (RamOp(WRITE, 0, 0, value=1), RamOp(READ, 0, 0)):
        for phase in expand_op(ram, op).phases:
            sim.apply(phase.settings)
    return ram, sim


def test_bitline_vicinity_solve(benchmark):
    ram, sim = prepared_ram_sim()
    net = ram.net
    engine = sim.engine
    # Open the read word line so the bit line vicinity spans the row.
    sim.apply({ram.phi_r: 1})
    seed = net.node("rbl0")
    members, boundary, adjacency = explore(net, engine.tstates, [seed])
    assert len(members) > 2

    benchmark(
        solve_vicinity,
        net,
        engine.states,
        members,
        boundary,
        adjacency,
    )


def test_vicinity_exploration(benchmark):
    ram, sim = prepared_ram_sim()
    sim.apply({ram.phi_r: 1})
    net = ram.net
    engine = sim.engine
    seed = net.node("rbl0")

    benchmark(explore, net, engine.tstates, [seed])


def test_good_circuit_pattern(benchmark):
    ram, sim = prepared_ram_sim()
    pattern = expand_op(ram, RamOp(READ, 2, 3))

    def one_pattern():
        for phase in pattern.phases:
            sim.apply(phase.settings)

    benchmark(one_pattern)


def test_statelist_sweep(benchmark):
    state_list = StateList()
    for cid in range(0, 400, 2):
        state_list.set(cid, cid % 3)

    def sweep():
        state_list.begin_sweep()
        hits = 0
        for cid in range(400):
            if state_list.sweep_get(cid) is not None:
                hits += 1
        return hits

    assert sweep() == 200
    benchmark(sweep)


def test_statelist_random_access(benchmark):
    state_list = StateList()
    for cid in range(0, 400, 2):
        state_list.set(cid, cid % 3)

    def lookups():
        total = 0
        for cid in range(400):
            if state_list.get(cid) is not None:
                total += 1
        return total

    benchmark(lookups)
