"""TAB1: the in-text scaling comparison (paper section 5).

Paper, RAM64 -> RAM256 (3x transistors, 3.6x patterns, 3.2x faults):
good-circuit time x9, concurrent time x9, estimated serial time x37 --
i.e. concurrent fault simulation scales like (circuit size x patterns),
serial like (circuit size x patterns x faults).

Shape criteria: the serial estimate's scale factor clearly exceeds the
good-circuit and concurrent factors, and the concurrent factor stays
within a modest multiple of the good-circuit factor.
"""

from __future__ import annotations

from repro.harness.experiments import run_scaling


def test_scaling_with_circuit_size(benchmark, bench_scale):
    small = bench_scale["scaling_small"]
    large = bench_scale["scaling_large"]

    result = benchmark.pedantic(
        lambda: run_scaling(small=small[:2], large=large[:2]),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    good_factor = result.factor("good_seconds")
    concurrent_factor = result.factor("concurrent_seconds")
    serial_factor = result.factor("serial_estimate_seconds")

    # Work grows with circuit size in every mode.
    assert good_factor > 1
    assert concurrent_factor > 1
    # Serial pays the extra fault-count factor; concurrent does not.
    margin = bench_scale["scaling_serial_margin"]
    assert serial_factor > margin * concurrent_factor
    assert serial_factor > margin * good_factor
    # Concurrent tracks the good circuit's growth within a small
    # multiple (the paper measured identical x9 factors).
    assert concurrent_factor < 6 * good_factor
