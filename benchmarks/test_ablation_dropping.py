"""Ablation: fault dropping on vs off.

"Any time the simulation of a faulty circuit produces a result on the
output data pin different than the good circuit simulation, the fault is
considered detected, and the simulation of that circuit is dropped."

Dropping is what produces the cheap Figure-1 tail: once the severe
faults are gone, the survivors cost little.  With dropping disabled,
every detected circuit keeps diverging (often wildly) and must be
re-simulated for the rest of the run.
"""

from __future__ import annotations

from repro.circuits.ram import build_ram
from repro.core.concurrent import ConcurrentFaultSimulator
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1


def run(ram, patterns, faults, drop):
    simulator = ConcurrentFaultSimulator(
        ram.net, faults, observed=[ram.dout], drop_on_detect=drop
    )
    return simulator.run(patterns)


def test_dropping_pays_off(benchmark, bench_scale):
    rows, cols, n_faults = bench_scale["fig1"]
    ram = build_ram(rows, cols)
    patterns = sequence1(ram).patterns
    universe = ram_fault_universe(ram)
    if n_faults is not None and n_faults < len(universe):
        faults = sample_faults(universe, n_faults, seed=1985)
    else:
        faults = universe

    no_drop_report = run(ram, patterns, faults, drop=False)

    drop_report = benchmark.pedantic(
        lambda: run(ram, patterns, faults, drop=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"dropping on:  {drop_report.total_seconds:.2f}s; "
        f"off: {no_drop_report.total_seconds:.2f}s "
        f"({no_drop_report.total_seconds / drop_report.total_seconds:.1f}x)"
    )
    # Same faults are detected either way (first detections coincide)...
    assert (
        drop_report.log.detected_circuits()
        == no_drop_report.log.detected_circuits()
    )
    for cid in drop_report.log.detected_circuits():
        assert (
            drop_report.log.detection_pattern(cid)
            == no_drop_report.log.detection_pattern(cid)
        )
    # ...but dropping is substantially cheaper.
    assert drop_report.total_seconds < 0.8 * no_drop_report.total_seconds
