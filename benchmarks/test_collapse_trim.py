"""Fault collapsing + trimming speedup benchmark -> BENCH_collapse.json.

Runs the Figure-1 RAM16 workload over a combined fault universe (the
paper's node-stuck universe plus the transistor stuck-open/stuck-closed
universe, where structural collapsing actually bites) twice per
backend: once with collapsing and trimming enabled (the default) and
once with ``collapse=False, trim=False`` -- the exact pre-optimization
behavior.  Archives both timings next to the repo root as
``BENCH_collapse.json``.

Checks:

* post-expansion detections are identical to the uncollapsed baseline
  -- same faults detected at the same pattern and phase (collapsing and
  trimming are pure redundancy elimination, never approximation);
* each backend beats its own baseline end-to-end by the configured
  factor (``collapse_min_speedup``, 1.3x at both scales);
* the collapse actually found classes (representatives < faults) and
  the trim counters actually fired.

Timing uses the process clock and the min over repeated runs, so the
speedup assertion measures algorithmic work, not shared-runner noise.
"""

from __future__ import annotations

import json
import os

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, run_backend
from repro.core.faults import (
    ram_fault_universe,
    sample_faults,
    transistor_stuck_universe,
)
from repro.patterns.sequences import sequence1

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_collapse.json",
)

#: min-of-N repeats per leg; the process clock is stable, so two
#: repeats are enough to shave scheduler hiccups off either leg.
_REPEATS = 2


def _first_detections(report):
    return {
        circuit_id: (
            (hit.pattern_index, hit.phase_index)
            if (hit := report.log.first_detection(circuit_id)) is not None
            else None
        )
        for circuit_id in range(1, report.n_faults + 1)
    }


def _timed_leg(backend, net, faults, observed, patterns, **options):
    """Min-of-repeats process-clock run of one backend configuration."""
    policy = SimPolicy()  # process clock: measure work, not the machine
    best = None
    for _ in range(_REPEATS):
        report = run_backend(
            backend, net, faults, observed, patterns, policy, **options
        )
        if best is None or report.total_seconds < best.total_seconds:
            best = report
    return best


def test_collapse_trim_speedup(bench_scale):
    rows, cols, n_serial, n_concurrent = bench_scale["collapse"]
    min_speedup = bench_scale["collapse_min_speedup"]
    ram = build_ram(rows, cols)
    patterns = list(sequence1(ram).patterns)
    universe = ram_fault_universe(ram) + transistor_stuck_universe(ram.net)

    def pick(count):
        if count is None or count >= len(universe):
            return universe
        return sample_faults(universe, count, seed=1985)

    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "universe_faults": len(universe),
        "clock": "process",
        "repeats": _REPEATS,
        "min_speedup": min_speedup,
        "backends": {},
    }
    for backend, faults in (
        ("serial", pick(n_serial)),
        ("concurrent", pick(n_concurrent)),
    ):
        # static_prune is off on both legs so the measurement isolates
        # collapse + trim (test_static_prune.py measures the pruner).
        optimized = _timed_leg(
            backend, ram.net, faults, [ram.dout], patterns,
            static_prune=False,
        )
        baseline = _timed_leg(
            backend, ram.net, faults, [ram.dout], patterns,
            collapse=False, trim=False, static_prune=False,
        )

        # Redundancy elimination must not change the answer: identical
        # post-expansion detections, fault by fault.
        assert _first_detections(optimized) == _first_detections(baseline)

        # The machinery must actually be engaging on this workload.
        stats = optimized.collapse
        assert stats is not None
        assert stats["representatives"] < stats["faults"] == len(faults)
        assert optimized.trim and any(optimized.trim.values())
        assert baseline.collapse is None and baseline.trim is None

        speedup = baseline.total_seconds / max(
            optimized.total_seconds, 1e-9
        )
        payload["backends"][backend] = {
            "n_faults": len(faults),
            "representatives": stats["representatives"],
            "classes": stats["classes"],
            "trim": optimized.trim,
            "optimized_seconds": round(optimized.total_seconds, 6),
            "baseline_seconds": round(baseline.total_seconds, 6),
            "speedup": round(speedup, 3),
            "detected": optimized.detected,
        }
        assert speedup >= min_speedup, (backend, speedup, min_speedup)

    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["backends"], indent=2))
