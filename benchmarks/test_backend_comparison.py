"""Cross-backend comparison on the Figure-1 workload -> BENCH_backends.json.

Runs the same RAM / Test Sequence 1 / sampled-fault workload through
every registered fault-simulation backend (serial, concurrent, batch)
and archives per-backend wall-clock next to the repo root as
``BENCH_backends.json``, so the performance trajectory of each strategy
is tracked across changes.

At the default CI scale the workload is the reduced Figure-1 setup the
rest of the benchmark suite uses; ``REPRO_BENCH_SCALE=paper`` runs the
paper's RAM64 dimensions (428 faults, 407 patterns -- budget tens of
minutes for the serial baseline).

Checks (absolute times are machine-dependent):

* every backend reports the same detections -- same faults, same
  pattern, same phase (the registry contract);
* the concurrent backend does not regress behind the serial baseline
  it exists to beat;
* fault dropping compacts the batch backend's lanes below the fault
  count.
"""

from __future__ import annotations

import json
import os

from repro.circuits.ram import build_ram
from repro.core import SimPolicy, available_backends, run_backend
from repro.core.batch import BatchFaultSimulator
from repro.core.faults import ram_fault_universe, sample_faults
from repro.patterns.sequences import sequence1

_OUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_backends.json",
)


def test_backend_comparison(bench_scale):
    rows, cols, n_faults = bench_scale["backends"]
    ram = build_ram(rows, cols)
    sequence = sequence1(ram)
    patterns = list(sequence.patterns)
    universe = ram_fault_universe(ram)
    if n_faults is None or n_faults >= len(universe):
        faults = universe
    else:
        faults = sample_faults(universe, n_faults, seed=1985)

    policy = SimPolicy(clock="perf")  # wall-clock, dropping on
    reports = {}
    batch_sim = None
    for name in available_backends():
        if name == "batch":
            # Run the simulator directly (same machinery the backend
            # wraps) so the compaction probe below reuses this run
            # instead of simulating the whole workload a second time.
            batch_sim = BatchFaultSimulator(
                ram.net, faults, [ram.dout],
                detection_policy=policy.detection_policy,
                drop_on_detect=policy.drop_on_detect,
                max_rounds=policy.max_rounds,
            )
            reports[name] = batch_sim.run(patterns, clock=policy.clock)
        else:
            reports[name] = run_backend(
                name, ram.net, faults, [ram.dout], patterns, policy
            )

    # Registry contract: identical detections from every strategy.
    baseline = reports["serial"]
    for name, report in reports.items():
        assert report.n_faults == len(faults)
        for circuit_id in range(1, len(faults) + 1):
            mine = report.log.first_detection(circuit_id)
            ref = baseline.log.first_detection(circuit_id)
            mine_at = (
                (mine.pattern_index, mine.phase_index) if mine else None
            )
            ref_at = (ref.pattern_index, ref.phase_index) if ref else None
            assert mine_at == ref_at, (name, circuit_id, mine_at, ref_at)

    # The concurrent algorithm must not regress behind the baseline it
    # exists to beat (measured headroom is ~2x; the 1.2 factor absorbs
    # shared-runner wall-clock noise without masking a real regression).
    assert (
        reports["concurrent"].total_seconds
        <= reports["serial"].total_seconds * 1.2
    )

    # Fault dropping compacts batch lanes below the original width.
    if reports["batch"].detected > len(faults) // 2:
        assert batch_sim.total_lane_bits() < len(faults)

    payload = {
        "workload": "fig1_sequence1",
        "circuit": ram.name,
        "rows": rows,
        "cols": cols,
        "n_patterns": len(patterns),
        "n_faults": len(faults),
        "detection_policy": policy.detection_policy,
        "clock": "perf",
        "backends": {
            name: {
                "wall_seconds": round(report.total_seconds, 6),
                "detected": report.detected,
                "coverage": round(report.coverage, 4),
                "oscillation_events": report.oscillation_events,
            }
            for name, report in reports.items()
        },
        "serial_over_concurrent": round(
            reports["serial"].total_seconds
            / max(reports["concurrent"].total_seconds, 1e-9),
            3,
        ),
        "serial_over_batch": round(
            reports["serial"].total_seconds
            / max(reports["batch"].total_seconds, 1e-9),
            3,
        ),
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print()
    print(json.dumps(payload["backends"], indent=2))
