"""Legacy setup shim.

The offline environments this reproduction targets have no ``wheel``
package, so PEP 517 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` work there.  All metadata lives in pyproject.toml;
modern toolchains should use plain ``pip install -e .``.
"""

from setuptools import setup

setup()
